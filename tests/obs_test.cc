// Observability tests: exact concurrent counting, log2 histogram bucket
// edges and quantiles, Prometheus text-format conformance (every line of
// the exposition is parsed), trace-ring wraparound under overflow, trace id
// parse/format round-trips, and an end-to-end HTTP pass — a decompose
// request's X-Request-Id comes back as a trace whose spans cover queue wait
// and the engine phases, with /metrics provably advancing.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "server/decomposition_http.h"
#include "server/http_server.h"
#include "service/decomposition_service.h"
#include "service/graph_registry.h"
#include "util/json.h"

namespace receipt::obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsTest, ConcurrentCounterIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_total", "concurrent test");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(MetricsTest, RegistryReturnsSameInstrumentForSameNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total", "h", {{"k", "v"}});
  Counter* b = registry.GetCounter("x_total", "h", {{"k", "v"}});
  Counter* c = registry.GetCounter("x_total", "h", {{"k", "w"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Label order is canonicalized: {a,b} and {b,a} are the same child.
  Counter* d = registry.GetCounter("y_total", "h", {{"a", "1"}, {"b", "2"}});
  Counter* e = registry.GetCounter("y_total", "h", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(d, e);
}

TEST(MetricsTest, HistogramBucketEdges) {
  Histogram histogram;
  // Bucket i holds ns <= 2^i: 1 ns -> bucket 0, 2 ns -> bucket 1,
  // 3 and 4 ns -> bucket 2, 5 ns -> bucket 3.
  histogram.Observe(0);
  histogram.Observe(1);
  histogram.Observe(2);
  histogram.Observe(3);
  histogram.Observe(4);
  histogram.Observe(5);
  EXPECT_EQ(histogram.BucketCount(0), 2u);  // 0 and 1 ns
  EXPECT_EQ(histogram.BucketCount(1), 1u);  // 2 ns
  EXPECT_EQ(histogram.BucketCount(2), 2u);  // 3, 4 ns
  EXPECT_EQ(histogram.BucketCount(3), 1u);  // 5 ns
  EXPECT_EQ(histogram.Count(), 6u);
  // A duration beyond the last finite bound lands in the overflow slot.
  Histogram overflow;
  overflow.Observe(UINT64_MAX);
  EXPECT_EQ(overflow.BucketCount(Histogram::kFiniteBuckets), 1u);
}

TEST(MetricsTest, HistogramQuantilesReportBucketUpperBounds) {
  Histogram histogram;
  EXPECT_EQ(histogram.Quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 99; ++i) histogram.Observe(100);    // bucket 7 (<=128)
  histogram.Observe(1'000'000);                           // bucket 20
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.50), 128e-9);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 128e-9);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), Histogram::BucketBoundSeconds(20));
  EXPECT_NEAR(histogram.SumSeconds(), 99 * 100e-9 + 1e-3, 1e-12);
}

/// Validates one exposition line-by-line: every line is a HELP comment, a
/// TYPE comment, or a sample `name[{labels}] value`.
void ValidatePrometheusText(const std::string& text) {
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n') << "exposition must end with a newline";
  size_t start = 0;
  int samples = 0;
  while (start < text.size()) {
    const size_t eol = text.find('\n', start);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = text.substr(start, eol - start);
    start = eol + 1;
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.compare(0, 7, "# HELP ") == 0 ||
        line.compare(0, 7, "# TYPE ") == 0) {
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment: " << line;
    // Sample: metric name (with optional {labels}) SP value.
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name_part = line.substr(0, space);
    const std::string value_part = line.substr(space + 1);
    ASSERT_FALSE(name_part.empty()) << line;
    ASSERT_FALSE(value_part.empty()) << line;
    char* end = nullptr;
    std::strtod(value_part.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparseable sample value: " << line;
    if (const size_t brace = name_part.find('{');
        brace != std::string::npos) {
      ASSERT_EQ(name_part.back(), '}') << line;
    }
    ++samples;
  }
  EXPECT_GT(samples, 0);
}

TEST(MetricsTest, PrometheusTextConformance) {
  MetricsRegistry registry;
  registry.GetCounter("req_total", "requests", {{"outcome", "ok"}})
      ->Increment(3);
  registry.GetCounter("req_total", "requests", {{"outcome", "bad\"quote"}})
      ->Increment();
  registry.GetGauge("depth", "queue depth")->Set(7);
  Histogram* histogram = registry.GetHistogram("lat_seconds", "latency");
  histogram->Observe(100);
  histogram->Observe(2'000'000);
  const std::string text = registry.RenderPrometheus();
  ValidatePrometheusText(text);
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total{outcome=\"ok\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 2"), std::string::npos);
  // Escaped label value survives rendering.
  EXPECT_NE(text.find("bad\\\"quote"), std::string::npos);
}

TEST(MetricsTest, HistogramBucketsRenderCumulative) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("h_seconds", "h");
  histogram->Observe(1);        // bucket 0
  histogram->Observe(1 << 12);  // bucket 12
  const std::string text = registry.RenderPrometheus();
  // Walk the rendered buckets: counts never decrease, +Inf equals _count.
  uint64_t previous = 0;
  size_t pos = 0;
  int buckets_seen = 0;
  while ((pos = text.find("h_seconds_bucket{le=\"", pos)) !=
         std::string::npos) {
    const size_t value_start = text.find("} ", pos) + 2;
    const uint64_t value = std::strtoull(text.c_str() + value_start,
                                         nullptr, 10);
    EXPECT_GE(value, previous) << "non-monotone cumulative bucket";
    previous = value;
    ++buckets_seen;
    pos = value_start;
  }
  EXPECT_GT(buckets_seen, 2);
  EXPECT_EQ(previous, 2u);  // +Inf bucket == observation count
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TEST(TraceTest, RecordAndSnapshotNewestFirst) {
  TraceRecorder recorder(16);
  recorder.Record(1, "first", 100, 10);
  recorder.Record(1, "second", 200, 20);
  const std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].Name(), "second");
  EXPECT_EQ(spans[1].Name(), "first");
  EXPECT_EQ(spans[1].start_ns, 100u);
  EXPECT_EQ(spans[1].duration_ns, 10u);
}

TEST(TraceTest, RingWrapsKeepingNewestSpans) {
  TraceRecorder recorder(8);
  EXPECT_EQ(recorder.capacity(), 8u);
  for (uint64_t i = 0; i < 100; ++i) {
    recorder.Record(7, "span", /*start_ns=*/i, /*duration_ns=*/1, /*arg=*/i);
  }
  EXPECT_EQ(recorder.recorded(), 100u);
  const std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // Newest-first: args 99 down to 92.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].arg, 99 - i);
  }
  const std::vector<TraceSpan> limited = recorder.Snapshot(3);
  ASSERT_EQ(limited.size(), 3u);
  EXPECT_EQ(limited[0].arg, 99u);
}

TEST(TraceTest, ForTraceFiltersAndOrdersOldestFirst) {
  TraceRecorder recorder(32);
  recorder.Record(5, "late", 300, 1);
  recorder.Record(6, "other", 150, 1);
  recorder.Record(5, "early", 100, 1);
  const std::vector<TraceSpan> spans = recorder.ForTrace(5);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].Name(), "early");
  EXPECT_EQ(spans[1].Name(), "late");
  EXPECT_TRUE(recorder.ForTrace(999).empty());
}

TEST(TraceTest, ConcurrentRecordersNeverTearSpans) {
  TraceRecorder recorder(64);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (uint64_t i = 0; i < 5000; ++i) {
        recorder.Record(static_cast<uint64_t>(t) + 1, "worker",
                        /*start_ns=*/t * 1000000ull + i, /*duration_ns=*/i,
                        /*arg=*/static_cast<uint64_t>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every readable span is internally consistent (arg matches trace_id - 1);
  // a torn read would mix fields from different writers.
  for (const TraceSpan& span : recorder.Snapshot()) {
    EXPECT_EQ(span.arg + 1, span.trace_id);
    EXPECT_EQ(span.Name(), "worker");
  }
  EXPECT_EQ(recorder.recorded(), kThreads * 5000u);
}

TEST(TraceTest, TraceIdParseFormatRoundTrip) {
  const uint64_t minted = MintTraceId();
  EXPECT_NE(minted, 0u);
  EXPECT_NE(minted, MintTraceId());
  const std::string text = FormatTraceId(minted);
  EXPECT_EQ(text.size(), 16u);
  EXPECT_EQ(ParseOrMintTraceId(text), minted);
  // Short hex parses directly; arbitrary tokens hash stably; whitespace is
  // trimmed; empty mints; "0" never produces the null id.
  EXPECT_EQ(ParseOrMintTraceId("abc123"), 0xabc123u);
  EXPECT_EQ(ParseOrMintTraceId("  abc123  "), 0xabc123u);
  EXPECT_EQ(ParseOrMintTraceId("my-request-token"),
            ParseOrMintTraceId("my-request-token"));
  EXPECT_NE(ParseOrMintTraceId("my-request-token"), 0u);
  EXPECT_NE(ParseOrMintTraceId(""), 0u);
  EXPECT_NE(ParseOrMintTraceId(""), ParseOrMintTraceId(""));
  EXPECT_NE(ParseOrMintTraceId("0"), 0u);
}

TEST(TraceTest, NullContextRecordsNothingAndScopedSpanIsInert) {
  TraceContext null_ctx;
  EXPECT_FALSE(null_ctx.enabled());
  null_ctx.EmitSince("ignored", 0);
  null_ctx.Emit("ignored", 0, 0);
  { ScopedSpan span(null_ctx, "ignored"); }

  TraceRecorder recorder(8);
  TraceContext ctx{&recorder, 42};
  EXPECT_TRUE(ctx.enabled());
  {
    ScopedSpan span(ctx, "scoped", /*arg=*/9);
  }
  const std::vector<TraceSpan> spans = recorder.ForTrace(42);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].Name(), "scoped");
  EXPECT_EQ(spans[0].arg, 9u);
  // Context with a recorder but no id is still a null sink.
  TraceContext no_id{&recorder, 0};
  EXPECT_FALSE(no_id.enabled());
}

TEST(TraceTest, LongSpanNamesAreTruncatedNotOverrun) {
  TraceRecorder recorder(8);
  recorder.Record(1, "a.very.long.span.name.that.exceeds.capacity", 0, 0);
  const std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].Name().size(), TraceSpan::kNameCapacity - 1);
  EXPECT_EQ(spans[0].Name(), "a.very.long.span.name.t");
}

}  // namespace
}  // namespace receipt::obs

// ---------------------------------------------------------------------------
// End to end over HTTP: trace propagation and /metrics advancement.
// ---------------------------------------------------------------------------

namespace receipt::server {
namespace {

using service::DecompositionService;
using service::GraphRegistry;
using service::ServiceOptions;

BipartiteGraph G1() { return ChungLuBipartite(300, 200, 1500, 0.6, 0.6, 101); }

struct ClientResult {
  int status = 0;
  std::string body;
  std::string raw;  ///< full response including the status line and headers
};

/// One-shot loopback request with optional extra headers.
ClientResult Fetch(uint16_t port, const std::string& method,
                   const std::string& path, const std::string& body = "",
                   const std::string& extra_headers = "") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  std::string request = method + " " + path + " HTTP/1.1\r\n" +
                        "Host: 127.0.0.1\r\n" + extra_headers +
                        "Content-Length: " + std::to_string(body.size()) +
                        "\r\n\r\n" + body;
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  ClientResult result;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    result.raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  if (result.raw.size() > 12) result.status = std::atoi(result.raw.c_str() + 9);
  const size_t body_start = result.raw.find("\r\n\r\n");
  if (body_start != std::string::npos) {
    result.body = result.raw.substr(body_start + 4);
  }
  return result;
}

util::JsonValue ParseBody(const ClientResult& result) {
  std::string error;
  auto json = util::JsonValue::Parse(result.body, &error);
  EXPECT_TRUE(json.has_value()) << error << "\nbody: " << result.body;
  return json.value_or(util::JsonValue());
}

struct TestServer {
  TestServer() : service(registry, ServiceOptions{}) {
    server = std::make_unique<HttpServer>(HttpServerOptions{});
    frontend =
        std::make_unique<DecompositionHttpFrontend>(registry, service, *server);
    std::string error;
    EXPECT_TRUE(server->Start(&error)) << error;
  }
  ~TestServer() {
    server->Stop();
    service.Shutdown();
  }
  uint16_t port() const { return server->port(); }

  GraphRegistry registry;
  DecompositionService service;
  std::unique_ptr<HttpServer> server;
  std::unique_ptr<DecompositionHttpFrontend> frontend;
};

std::set<std::string> SpanNames(const util::JsonValue& json) {
  std::set<std::string> names;
  const util::JsonValue* spans = json.Find("spans");
  EXPECT_NE(spans, nullptr);
  if (spans == nullptr) return names;
  for (const util::JsonValue& span : spans->Items()) {
    std::string name;
    EXPECT_TRUE(span.GetString("name", &name));
    names.insert(name);
  }
  return names;
}

TEST(HttpObservabilityTest, DecomposeCarriesTraceWithQueueAndEngineSpans) {
  TestServer ts;
  ts.registry.Register("g1", G1());

  const ClientResult result =
      Fetch(ts.port(), "POST", "/v1/decompose",
            R"({"graph": "g1", "kind": "tip-U", "algo": "RECEIPT",)"
            R"( "partitions": 6, "threads": 2})",
            "X-Request-Id: abc123\r\n");
  ASSERT_EQ(result.status, 200);
  // The client-supplied hex id is canonicalized and echoed in the header
  // and the body.
  EXPECT_NE(result.raw.find("X-Request-Id: 0000000000abc123"),
            std::string::npos)
      << result.raw.substr(0, 400);
  const util::JsonValue json = ParseBody(result);
  std::string trace_id;
  ASSERT_TRUE(json.GetString("trace_id", &trace_id));
  EXPECT_EQ(trace_id, "0000000000abc123");

  const ClientResult trace =
      Fetch(ts.port(), "GET", "/v1/traces/" + trace_id);
  ASSERT_EQ(trace.status, 200);
  const std::set<std::string> names = SpanNames(ParseBody(trace));
  EXPECT_EQ(names.count("http.parse"), 1u);
  EXPECT_EQ(names.count("request.parse"), 1u);
  EXPECT_EQ(names.count("queue.wait"), 1u);
  EXPECT_EQ(names.count("engine.run"), 1u);
  EXPECT_EQ(names.count("engine.count"), 1u);
  EXPECT_EQ(names.count("engine.cd"), 1u);
  EXPECT_EQ(names.count("engine.cd.range"), 1u);
  EXPECT_EQ(names.count("engine.fd"), 1u);
  EXPECT_EQ(names.count("response.serialize"), 1u);

  // The whole-trace view is ordered and the engine.run span nests inside
  // the request window.
  const util::JsonValue trace_json = ParseBody(trace);
  const util::JsonValue* spans = trace_json.Find("spans");
  ASSERT_NE(spans, nullptr);
  uint64_t previous_start = 0;
  for (const util::JsonValue& span : spans->Items()) {
    const util::JsonValue* start = span.Find("start_ns");
    ASSERT_NE(start, nullptr);
    EXPECT_GE(start->AsUint(), previous_start);
    previous_start = start->AsUint();
  }
}

TEST(HttpObservabilityTest, MintedTraceIdWhenHeaderAbsent) {
  TestServer ts;
  ts.registry.Register("g1", G1());
  const ClientResult result =
      Fetch(ts.port(), "POST", "/v1/decompose",
            R"({"graph": "g1", "kind": "tip-U", "algo": "BUP"})");
  ASSERT_EQ(result.status, 200);
  std::string trace_id;
  ASSERT_TRUE(ParseBody(result).GetString("trace_id", &trace_id));
  EXPECT_EQ(trace_id.size(), 16u);
  const ClientResult trace =
      Fetch(ts.port(), "GET", "/v1/traces/" + trace_id);
  EXPECT_EQ(trace.status, 200);
}

TEST(HttpObservabilityTest, MetricsAdvanceAcrossADecomposeRoundTrip) {
  TestServer ts;
  ts.registry.Register("g1", G1());

  const ClientResult before = Fetch(ts.port(), "GET", "/metrics");
  ASSERT_EQ(before.status, 200);
  EXPECT_NE(before.raw.find("text/plain"), std::string::npos);
  receipt::obs::ValidatePrometheusText(before.body);

  ASSERT_EQ(Fetch(ts.port(), "POST", "/v1/decompose",
                  R"({"graph": "g1", "kind": "tip-U", "algo": "RECEIPT"})")
                .status,
            200);

  const ClientResult after = Fetch(ts.port(), "GET", "/metrics");
  receipt::obs::ValidatePrometheusText(after.body);
  const auto sample = [](const std::string& text, const std::string& name) {
    const size_t pos = text.find("\n" + name + " ");
    EXPECT_NE(pos, std::string::npos) << "missing sample: " << name;
    if (pos == std::string::npos) return uint64_t{0};
    return static_cast<uint64_t>(
        std::strtoull(text.c_str() + pos + name.size() + 2, nullptr, 10));
  };
  EXPECT_EQ(sample(after.body, "receipt_requests_total{outcome=\"ok\"}") -
                sample(before.body, "receipt_requests_total{outcome=\"ok\"}"),
            1u);
  EXPECT_EQ(sample(after.body, "receipt_engine_runs_total") -
                sample(before.body, "receipt_engine_runs_total"),
            1u);
  EXPECT_GE(sample(after.body, "receipt_request_latency_seconds_count"), 1u);
  EXPECT_GE(sample(after.body, "receipt_queue_wait_seconds_count"), 1u);
  EXPECT_GE(sample(after.body, "receipt_engine_run_seconds_count"), 1u);
  EXPECT_GE(sample(after.body, "receipt_engine_wedges_total{phase=\"cd\"}"),
            1u);
  EXPECT_GE(sample(after.body,
                   "receipt_http_requests_total{path=\"/v1/decompose\"}"),
            1u);
}

TEST(HttpObservabilityTest, StatzCarriesGrowthsAndLatencyQuantiles) {
  TestServer ts;
  ts.registry.Register("g1", G1());
  ASSERT_EQ(Fetch(ts.port(), "POST", "/v1/decompose",
                  R"({"graph": "g1", "kind": "tip-U", "algo": "RECEIPT"})")
                .status,
            200);
  const ClientResult statz = Fetch(ts.port(), "GET", "/statz");
  ASSERT_EQ(statz.status, 200);
  const util::JsonValue json = ParseBody(statz);
  EXPECT_NE(json.Find("workspace_growths"), nullptr);
  const util::JsonValue* latency = json.Find("latency");
  ASSERT_NE(latency, nullptr);
  for (const char* key : {"request", "queue_wait", "engine_run"}) {
    const util::JsonValue* block = latency->Find(key);
    ASSERT_NE(block, nullptr) << key;
    const util::JsonValue* count = block->Find("count");
    ASSERT_NE(count, nullptr);
    EXPECT_GE(count->AsUint(), 1u) << key;
    EXPECT_NE(block->Find("p50_seconds"), nullptr);
    EXPECT_NE(block->Find("p95_seconds"), nullptr);
    EXPECT_NE(block->Find("p99_seconds"), nullptr);
  }
}

TEST(HttpObservabilityTest, TraceEndpointsRejectBadIdsAndLimit) {
  TestServer ts;
  EXPECT_EQ(Fetch(ts.port(), "GET", "/v1/traces/not-hex!").status, 400);
  EXPECT_EQ(Fetch(ts.port(), "GET", "/v1/traces/00000000000000000").status,
            400);  // 17 digits
  EXPECT_EQ(Fetch(ts.port(), "GET", "/v1/traces/deadbeef").status, 404);
  EXPECT_EQ(Fetch(ts.port(), "GET", "/v1/traces?limit=nope").status, 400);
  const ClientResult list = Fetch(ts.port(), "GET", "/v1/traces?limit=5");
  ASSERT_EQ(list.status, 200);
  const util::JsonValue json = ParseBody(list);
  ASSERT_NE(json.Find("spans"), nullptr);
}

TEST(HttpObservabilityTest, TracingDoesNotChangeDecompositionResults) {
  // Bit-identicality: the same request with and without an explicit trace
  // id (and on a fresh service with tracing wired) returns identical
  // numbers. The second response is a cache hit by design; use two servers
  // so both runs exercise the engine.
  std::vector<Count> traced;
  std::vector<Count> untraced;
  const std::string body =
      R"({"graph": "g1", "kind": "tip-V", "algo": "RECEIPT", "partitions": 5})";
  const auto numbers = [](const util::JsonValue& json) {
    std::vector<Count> result;
    const util::JsonValue* array = json.Find("numbers");
    EXPECT_NE(array, nullptr);
    if (array == nullptr) return result;
    for (const util::JsonValue& item : array->Items()) {
      result.push_back(item.AsUint());
    }
    return result;
  };
  {
    TestServer ts;
    ts.registry.Register("g1", G1());
    const ClientResult r = Fetch(ts.port(), "POST", "/v1/decompose", body,
                                 "X-Request-Id: feed1\r\n");
    ASSERT_EQ(r.status, 200);
    traced = numbers(ParseBody(r));
  }
  {
    TestServer ts;
    ts.registry.Register("g1", G1());
    const ClientResult r = Fetch(ts.port(), "POST", "/v1/decompose", body);
    ASSERT_EQ(r.status, 200);
    untraced = numbers(ParseBody(r));
  }
  ASSERT_FALSE(traced.empty());
  EXPECT_EQ(traced, untraced);
}

}  // namespace
}  // namespace receipt::server
