// Placement & scheduling suite (`ctest -L placement`): the NUMA topology
// layer (sysfs cpulist parsing, discovery fallback, synthetic layouts,
// largest-remainder worker apportionment), the cost-model assigners (LPT
// against brute-force optimal, round-robin structure, migration pressure),
// and the contract the whole layer rests on — decomposition results are
// bit-identical whatever the node count, assignment rule, pinning flag,
// thread count, or steal interleaving.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "engine/cost_model.h"
#include "engine/topology.h"
#include "graph/generators.h"
#include "service/decomposition_service.h"
#include "service/graph_registry.h"
#include "tip/receipt.h"
#include "util/parallel.h"

namespace receipt {
namespace {

using engine::AssignLpt;
using engine::AssignRoundRobin;
using engine::NumaTopology;
using engine::ParseCpuList;
using engine::PlacementAssign;
using engine::PlacementPlan;

// ---------------------------------------------------------------------------
// ParseCpuList: the sysfs grammar, including the shapes real kernels emit.
// ---------------------------------------------------------------------------

TEST(ParseCpuListTest, AcceptsSysfsShapes) {
  std::vector<int> cpus;
  ASSERT_TRUE(ParseCpuList("0-3,8,10-11", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));

  ASSERT_TRUE(ParseCpuList("5", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{5}));

  // sysfs lines end in '\n'; leading/trailing whitespace is tolerated.
  ASSERT_TRUE(ParseCpuList("2-4\n", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{2, 3, 4}));
  ASSERT_TRUE(ParseCpuList(" 7 ", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{7}));

  // Out-of-order and duplicated entries come back sorted and deduplicated.
  ASSERT_TRUE(ParseCpuList("8,2-3,2", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{2, 3, 8}));
}

TEST(ParseCpuListTest, EmptyListIsAMemoryOnlyNode) {
  std::vector<int> cpus{99};
  ASSERT_TRUE(ParseCpuList("", &cpus));
  EXPECT_TRUE(cpus.empty());
  cpus = {99};
  ASSERT_TRUE(ParseCpuList(" \n", &cpus));
  EXPECT_TRUE(cpus.empty());
}

TEST(ParseCpuListTest, RejectsMalformedInput) {
  // Whitespace is only legal leading, trailing, or after a number — a
  // space before a digit (e.g. "1, 3") is not part of the sysfs grammar.
  for (const char* bad : {"a", "3-1", "1,", "1-", "-3", "1,,2", "1 2",
                          "1, 3", "1-2-3", "0x4"}) {
    std::vector<int> cpus{99};
    EXPECT_FALSE(ParseCpuList(bad, &cpus)) << "input: " << bad;
    EXPECT_TRUE(cpus.empty()) << "input: " << bad;  // left empty on failure
  }
}

// ---------------------------------------------------------------------------
// Topology discovery and synthetic layouts.
// ---------------------------------------------------------------------------

TEST(NumaTopologyTest, DiscoverAlwaysYieldsAUsableLayout) {
  // Whatever the machine — no sysfs node tree, masked affinity, one node,
  // many nodes — discovery must produce at least one node owning at least
  // one CPU, because placement consumers divide by these counts.
  const NumaTopology topology = NumaTopology::Discover();
  ASSERT_GE(topology.num_nodes(), 1);
  EXPECT_GE(topology.total_cpus(), 1);
  EXPECT_FALSE(topology.synthetic());
  for (const engine::NumaNode& node : topology.nodes()) {
    EXPECT_FALSE(node.cpus.empty());
  }
  // The process-wide instance is one coherent snapshot of the same machine.
  const NumaTopology& system = engine::SystemTopology();
  EXPECT_GE(system.num_nodes(), 1);
  EXPECT_GE(system.total_cpus(), 1);
}

TEST(NumaTopologyTest, SingleNodeFallbackShape) {
  const NumaTopology topology = NumaTopology::SingleNode(8);
  ASSERT_EQ(topology.num_nodes(), 1);
  EXPECT_EQ(topology.nodes()[0].id, 0);
  EXPECT_GE(topology.total_cpus(), 1);
}

TEST(NumaTopologyTest, SyntheticLayoutAndPinningNoOp) {
  const NumaTopology topology = NumaTopology::Synthetic(4, 2);
  ASSERT_EQ(topology.num_nodes(), 4);
  EXPECT_EQ(topology.total_cpus(), 8);
  EXPECT_TRUE(topology.synthetic());
  int next = 0;
  for (const engine::NumaNode& node : topology.nodes()) {
    for (const int cpu : node.cpus) EXPECT_EQ(cpu, next++);
  }
  // Pinning against fabricated CPU ids must refuse rather than pin the
  // caller to CPUs that may not exist.
  EXPECT_FALSE(engine::PinThreadToNode(topology, 0));
  EXPECT_FALSE(engine::PinThreadToNode(topology, -1));
  EXPECT_FALSE(engine::PinThreadToNode(topology, 4));
}

TEST(NumaTopologyTest, AssignWorkersLargestRemainder) {
  // Equal nodes, divisible workers: round-robin emission so consecutive
  // workers land on different nodes.
  EXPECT_EQ(NumaTopology::Synthetic(2, 4).AssignWorkers(4),
            (std::vector<int>{0, 1, 0, 1}));
  // Fewer workers than nodes: remainders tie, lower node index wins.
  EXPECT_EQ(NumaTopology::Synthetic(4, 2).AssignWorkers(2),
            (std::vector<int>{0, 1}));
  // 7 workers over 3 equal nodes: quotas {3,2,2} by largest remainder.
  EXPECT_EQ(NumaTopology::Synthetic(3, 2).AssignWorkers(7),
            (std::vector<int>{0, 1, 2, 0, 1, 2, 0}));
  // Oversubscription (more workers than CPUs) still covers every node.
  EXPECT_EQ(NumaTopology::Synthetic(2, 1).AssignWorkers(5),
            (std::vector<int>{0, 1, 0, 1, 0}));
  // Degenerate inputs.
  EXPECT_TRUE(NumaTopology::Synthetic(2, 2).AssignWorkers(0).empty());
  EXPECT_EQ(NumaTopology::Synthetic(3, 1).AssignWorkers(1),
            (std::vector<int>{0}));
}

TEST(NumaTopologyTest, ScopedAffinityRestoresTheMask) {
#if defined(__linux__)
  const auto current_mask = [] {
    std::vector<int> cpus;
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
      for (int c = 0; c < CPU_SETSIZE; ++c) {
        if (CPU_ISSET(c, &set)) cpus.push_back(c);
      }
    }
    return cpus;
  };
  const std::vector<int> before = current_mask();
  ASSERT_FALSE(before.empty());
  {
    engine::ScopedAffinity guard;
    // Narrow the mask to one CPU inside the scope (mirrors what a pinned
    // FD worker does)…
    ASSERT_TRUE(engine::PinThreadToCpus({before.front()}));
    EXPECT_EQ(current_mask(), std::vector<int>{before.front()});
  }
  // …and the guard's destructor must hand back the original mask.
  EXPECT_EQ(current_mask(), before);
#else
  engine::ScopedAffinity guard;  // construct/destruct smoke on non-Linux
#endif
}

// ---------------------------------------------------------------------------
// Cost-model assigners.
// ---------------------------------------------------------------------------

TEST(CostModelTest, RoundRobinDealsInCreationOrder) {
  const std::vector<Count> costs = {5, 1, 7, 3, 2};
  const PlacementPlan plan = AssignRoundRobin(costs, 2);
  EXPECT_EQ(plan.bin_of, (std::vector<uint32_t>{0, 1, 0, 1, 0}));
  ASSERT_EQ(plan.bin_items.size(), 2u);
  EXPECT_EQ(plan.bin_items[0], (std::vector<uint32_t>{0, 2, 4}));
  EXPECT_EQ(plan.bin_items[1], (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(plan.bin_loads, (std::vector<Count>{14, 4}));
  EXPECT_EQ(plan.Makespan(), 14u);
  // total 18 over 2 bins → ⌈avg⌉ = 9; only bin 0 is overloaded, by 5.
  EXPECT_EQ(plan.MigrationPressure(), 5u);
}

TEST(CostModelTest, LptHandExampleAndDegenerateInputs) {
  const std::vector<Count> costs = {10, 2};
  const PlacementPlan plan = AssignLpt(costs, 3);
  EXPECT_EQ(plan.bin_of, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(plan.bin_loads, (std::vector<Count>{10, 2, 0}));
  EXPECT_EQ(plan.Makespan(), 10u);
  // total 12 over 3 bins → ⌈avg⌉ = 4; bin 0 overloaded by 6.
  EXPECT_EQ(plan.MigrationPressure(), 6u);

  const PlacementPlan empty = AssignLpt({}, 4);
  EXPECT_EQ(empty.Makespan(), 0u);
  EXPECT_EQ(empty.MigrationPressure(), 0u);
  ASSERT_EQ(empty.bin_loads.size(), 4u);

  // num_bins == 0 clamps to one bin rather than dividing by zero.
  const std::vector<Count> one = {3, 4};
  const PlacementPlan clamped = AssignLpt(one, 0);
  ASSERT_EQ(clamped.bin_loads.size(), 1u);
  EXPECT_EQ(clamped.bin_loads[0], 7u);
}

TEST(CostModelTest, LptBreaksTiesByLowerIdAndLowerBin) {
  const std::vector<Count> costs = {4, 4, 4, 4};
  const PlacementPlan plan = AssignLpt(costs, 2);
  // Equal costs sort by lower partition id; equal loads pick the lower
  // bin — so the plan is a pure function of the cost vector.
  EXPECT_EQ(plan.bin_items[0], (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(plan.bin_items[1], (std::vector<uint32_t>{1, 3}));
}

TEST(CostModelTest, LptWithinGrahamBoundOfBruteForce) {
  // Graham (1969): LPT makespan ≤ (4/3 − 1/(3m)) · OPT. Checked as
  // 3·m·LPT ≤ (4m − 1)·OPT in exact integers against exhaustive search.
  std::mt19937 rng(42);
  for (int instance = 0; instance < 30; ++instance) {
    const uint32_t m = 2 + rng() % 3;                    // 2..4 bins
    const size_t n = 3 + rng() % 6;                      // 3..8 items
    std::vector<Count> costs(n);
    for (Count& c : costs) c = rng() % 41;               // 0..40

    uint64_t opt = ~uint64_t{0};
    uint64_t combos = 1;
    for (size_t i = 0; i < n; ++i) combos *= m;
    for (uint64_t code = 0; code < combos; ++code) {
      std::vector<uint64_t> loads(m, 0);
      uint64_t rest = code;
      for (size_t i = 0; i < n; ++i) {
        loads[rest % m] += costs[i];
        rest /= m;
      }
      opt = std::min(opt, *std::max_element(loads.begin(), loads.end()));
    }

    const PlacementPlan plan = AssignLpt(costs, m);
    EXPECT_LE(uint64_t{3} * m * plan.Makespan(), (uint64_t{4} * m - 1) * opt)
        << "instance " << instance << ": LPT " << plan.Makespan()
        << " vs OPT " << opt << " on " << m << " bins";

    // Structural invariants: loads are the member-cost sums and bin_of
    // agrees with bin_items.
    Count total = 0;
    for (const Count c : costs) total += c;
    Count load_sum = 0;
    for (const Count load : plan.bin_loads) load_sum += load;
    EXPECT_EQ(load_sum, total);
    for (uint32_t b = 0; b < plan.bin_items.size(); ++b) {
      for (const uint32_t item : plan.bin_items[b]) {
        EXPECT_EQ(plan.bin_of[item], b);
      }
    }
  }
}

TEST(CostModelTest, CostMassBelowSumsStrictlyBelow) {
  const std::vector<std::pair<Count, Count>> entries = {
      {0, 5}, {3, 7}, {10, 1}};
  EXPECT_EQ(engine::CostMassBelow(entries, 0), 0u);
  EXPECT_EQ(engine::CostMassBelow(entries, 1), 5u);
  EXPECT_EQ(engine::CostMassBelow(entries, 4), 12u);
  EXPECT_EQ(engine::CostMassBelow(entries, 10), 12u);  // strict: 10 ≮ 10
  EXPECT_EQ(engine::CostMassBelow(entries, 11), 13u);
}

// ---------------------------------------------------------------------------
// The determinism contract: placement moves work, never results.
// ---------------------------------------------------------------------------

TEST(PlacementDeterminismTest, ResultsInvariantAcrossPlacementKnobs) {
  const BipartiteGraph graph = ChungLuBipartite(400, 260, 3000, 0.8, 0.8, 777);

  TipOptions reference_options;
  reference_options.num_threads = 1;
  reference_options.num_partitions = 8;
  reference_options.placement_nodes = 1;
  const TipResult reference = ReceiptDecompose(graph, reference_options);
  ASSERT_FALSE(reference.tip_numbers.empty());

  std::vector<int> threads = {1, 4};
  const int hw = MaxThreads();
  if (hw != 1 && hw != 4) threads.push_back(hw);

  for (const int nodes : {0, 1, 2, 4}) {
    for (const bool pin : {false, true}) {
      for (const int num_threads : threads) {
        for (const PlacementAssign assign :
             {PlacementAssign::kCostLpt, PlacementAssign::kRoundRobin}) {
          TipOptions options;
          options.num_threads = num_threads;
          options.num_partitions = 8;
          options.placement_nodes = nodes;
          options.pin_numa = pin;
          options.fd_assignment = assign;
          const TipResult result = ReceiptDecompose(graph, options);
          const std::string config =
              "nodes=" + std::to_string(nodes) +
              " pin=" + std::to_string(pin) +
              " threads=" + std::to_string(num_threads) + " assign=" +
              (assign == PlacementAssign::kCostLpt ? "lpt" : "rr");
          EXPECT_EQ(result.tip_numbers, reference.tip_numbers) << config;
          EXPECT_EQ(result.range_bounds, reference.range_bounds) << config;
          EXPECT_EQ(result.subset_of, reference.subset_of) << config;
          EXPECT_EQ(result.subsets, reference.subsets) << config;
        }
      }
    }
  }

  // Turning the workload-aware scheduler off entirely is also invariant.
  TipOptions unscheduled;
  unscheduled.num_threads = 4;
  unscheduled.num_partitions = 8;
  unscheduled.placement_nodes = 4;
  unscheduled.workload_aware_scheduling = false;
  const TipResult result = ReceiptDecompose(graph, unscheduled);
  EXPECT_EQ(result.tip_numbers, reference.tip_numbers);
  EXPECT_EQ(result.subsets, reference.subsets);
}

TEST(PlacementDeterminismTest, ForcedNodesPopulatePlacementStats) {
  const BipartiteGraph graph = ChungLuBipartite(400, 260, 3000, 0.8, 0.8, 778);
  TipOptions options;
  options.num_threads = 4;
  options.num_partitions = 8;
  options.placement_nodes = 4;
  const TipResult result = ReceiptDecompose(graph, options);
  EXPECT_EQ(result.stats.placement_nodes, 4u);
  EXPECT_GT(result.stats.makespan_predicted, 0u);
  EXPECT_GT(result.stats.makespan_measured, 0u);
  // Measured makespan is the most loaded node's FD wedge work; it can never
  // exceed the whole FD phase's wedge count.
  EXPECT_LE(result.stats.makespan_measured, result.stats.wedges_fd);

  // The same run on one node concentrates all measured work there.
  options.placement_nodes = 1;
  const TipResult single = ReceiptDecompose(graph, options);
  EXPECT_EQ(single.stats.placement_nodes, 1u);
  EXPECT_GE(single.stats.makespan_measured, result.stats.makespan_measured);
  EXPECT_EQ(single.tip_numbers, result.tip_numbers);
}

// ---------------------------------------------------------------------------
// Service-level scheduling: sticky routing, per-node queues, steal counters.
// ---------------------------------------------------------------------------

namespace svc = receipt::service;

svc::Request MakeRequest(const std::string& graph, int partitions) {
  svc::Request request;
  request.graph = graph;
  request.kind = svc::RequestKind::kTipU;
  request.algorithm = svc::Algorithm::kReceipt;
  request.partitions = partitions;
  request.threads = 1;
  return request;
}

TEST(ServiceSchedulingTest, StickyRoutingFillsPerNodeQueues) {
  svc::GraphRegistry registry;
  registry.Register("g1", ChungLuBipartite(200, 150, 900, 0.6, 0.6, 11));
  registry.Register("g2", ChungLuBipartite(210, 140, 950, 0.6, 0.6, 12));
  registry.Register("g3", ChungLuBipartite(190, 160, 920, 0.6, 0.6, 13));
  registry.Register("g4", ChungLuBipartite(205, 155, 940, 0.6, 0.6, 14));

  svc::ServiceOptions options;
  options.num_workers = 0;  // deterministic: only RunQueuedInline executes
  options.placement_nodes = 3;
  svc::DecompositionService service(registry, options);

  // New graphs are dealt round-robin across nodes; a repeated graph sticks
  // to the node that already serves it.
  std::vector<std::shared_future<svc::Response>> futures;
  for (const char* name : {"g1", "g2", "g3", "g4"}) {
    auto future = service.TrySubmit(MakeRequest(name, 5));
    ASSERT_TRUE(future.has_value()) << name;
    futures.push_back(std::move(*future));
  }
  auto again = service.TrySubmit(MakeRequest("g2", 6));  // sticks to g2's node
  ASSERT_TRUE(again.has_value());
  futures.push_back(std::move(*again));

  svc::DecompositionService::SchedulerStats stats = service.scheduler_stats();
  EXPECT_EQ(stats.num_nodes, 3);
  EXPECT_FALSE(stats.pinned);  // virtual nodes never pin
  ASSERT_EQ(stats.node_queue_depths.size(), 3u);
  EXPECT_EQ(stats.node_queue_depths[0], 2u);  // g1, g4 (round-robin wrap)
  EXPECT_EQ(stats.node_queue_depths[1], 2u);  // g2 twice (sticky)
  EXPECT_EQ(stats.node_queue_depths[2], 1u);  // g3

  // Inline drain pops home-first from node 0, then steals around the ring.
  // Node 0's g1 and g4 are distinct graphs (distinct epochs), so they pop
  // one at a time: two local pops. Node 1 holds the same graph twice —
  // same epoch, so the steal batches both in one pop — and node 2's g3 is
  // the final steal. All deterministic with no background workers.
  EXPECT_EQ(service.RunQueuedInline(), 5u);
  stats = service.scheduler_stats();
  EXPECT_EQ(stats.local_pops, 2u);
  EXPECT_EQ(stats.remote_steals, 2u);
  for (const size_t depth : stats.node_queue_depths) EXPECT_EQ(depth, 0u);

  for (const auto& future : futures) {
    EXPECT_EQ(future.get().status, svc::Status::kOk);
  }
}

TEST(ServiceSchedulingTest, ResultsIdenticalAcrossNodeCountsAndWorkers) {
  const BipartiteGraph graph =
      ChungLuBipartite(220, 160, 1100, 0.7, 0.7, 21);

  svc::GraphRegistry registry_a;
  registry_a.Register("g", graph);
  svc::ServiceOptions options_a;
  options_a.num_workers = 0;
  options_a.placement_nodes = 1;
  svc::DecompositionService service_a(registry_a, options_a);

  svc::GraphRegistry registry_b;
  registry_b.Register("g", graph);
  svc::ServiceOptions options_b;
  options_b.num_workers = 2;
  options_b.placement_nodes = 3;
  svc::DecompositionService service_b(registry_b, options_b);

  const svc::Response a = service_a.Execute(MakeRequest("g", 6));
  const svc::Response b = service_b.Execute(MakeRequest("g", 6));
  ASSERT_EQ(a.status, svc::Status::kOk);
  ASSERT_EQ(b.status, svc::Status::kOk);
  ASSERT_NE(a.payload, nullptr);
  ASSERT_NE(b.payload, nullptr);
  EXPECT_EQ(a.payload->numbers, b.payload->numbers);
}

TEST(ServiceSchedulingTest, WorkersSpreadAcrossForcedNodes) {
  svc::GraphRegistry registry;
  registry.Register("g", ChungLuBipartite(200, 150, 900, 0.6, 0.6, 31));

  svc::ServiceOptions options;
  options.num_workers = 3;
  options.placement_nodes = 2;
  svc::DecompositionService service(registry, options);

  const svc::DecompositionService::SchedulerStats stats =
      service.scheduler_stats();
  EXPECT_EQ(stats.num_nodes, 2);
  EXPECT_FALSE(stats.pinned);  // forced virtual nodes never pin
  EXPECT_EQ(stats.worker_nodes, (std::vector<int>{0, 1, 0}));

  EXPECT_EQ(service.Execute(MakeRequest("g", 5)).status, svc::Status::kOk);
  const svc::DecompositionService::SchedulerStats after =
      service.scheduler_stats();
  EXPECT_GE(after.local_pops + after.remote_steals, 1u);
}

}  // namespace
}  // namespace receipt
