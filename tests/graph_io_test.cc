// Unit tests for graph IO: KONECT text format and binary snapshots,
// including malformed-input failure injection.

#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/generators.h"

namespace receipt {
namespace {

class GraphIoTest : public testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& contents) {
    std::ofstream out(path);
    out << contents;
  }
};

TEST_F(GraphIoTest, KonectRoundTrip) {
  const BipartiteGraph g = ChungLuBipartite(60, 40, 250, 0.5, 0.5, 21);
  const std::string path = TempPath("roundtrip.konect");
  ASSERT_TRUE(SaveKonect(g, path));
  std::string error;
  const auto loaded = LoadKonect(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->ToEdges(), g.ToEdges());
}

TEST_F(GraphIoTest, KonectSkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.konect");
  WriteFile(path, "% header\n\n# another comment\n1 1\n2 2\n");
  const auto g = LoadKonect(path);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_EQ(g->num_u(), 2u);
  EXPECT_EQ(g->num_v(), 2u);
}

TEST_F(GraphIoTest, KonectRejectsMalformedLine) {
  const std::string path = TempPath("malformed.konect");
  WriteFile(path, "1 1\nnot-a-number 2\n");
  std::string error;
  EXPECT_FALSE(LoadKonect(path, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST_F(GraphIoTest, KonectRejectsMissingColumn) {
  const std::string path = TempPath("missing.konect");
  WriteFile(path, "1\n");
  EXPECT_FALSE(LoadKonect(path).has_value());
}

TEST_F(GraphIoTest, KonectRejectsZeroIds) {
  const std::string path = TempPath("zero.konect");
  WriteFile(path, "0 1\n");
  std::string error;
  EXPECT_FALSE(LoadKonect(path, &error).has_value());
  EXPECT_NE(error.find(">= 1"), std::string::npos) << error;
}

TEST_F(GraphIoTest, KonectMissingFile) {
  std::string error;
  EXPECT_FALSE(LoadKonect(TempPath("does_not_exist"), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST_F(GraphIoTest, KonectRejectsZeroLengthFile) {
  const std::string path = TempPath("zero_length.konect");
  WriteFile(path, "");
  std::string error;
  EXPECT_FALSE(LoadKonect(path, &error).has_value());
  EXPECT_NE(error.find("empty file"), std::string::npos) << error;
}

TEST_F(GraphIoTest, KonectAcceptsCommentsOnlyFileAsEmptyGraph) {
  // A zero-length file is an error, but a file that merely carries no data
  // lines (e.g. SaveKonect of the empty graph) is the empty graph.
  const std::string path = TempPath("comments_only.konect");
  WriteFile(path, "% header only\n");
  const auto g = LoadKonect(path);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST_F(GraphIoTest, KonectRejectsTrailingGarbageToken) {
  const std::string path = TempPath("garbage_token.konect");
  WriteFile(path, "1 2\n3 x4\n");
  std::string error;
  EXPECT_FALSE(LoadKonect(path, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST_F(GraphIoTest, BinaryRoundTrip) {
  const BipartiteGraph g = ChungLuBipartite(80, 50, 300, 0.7, 0.3, 23);
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(SaveBinary(g, path));
  std::string error;
  const auto loaded = LoadBinary(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->ToEdges(), g.ToEdges());
  EXPECT_EQ(loaded->num_u(), g.num_u());
  EXPECT_EQ(loaded->num_v(), g.num_v());
}

TEST_F(GraphIoTest, BinaryRejectsBadMagic) {
  const std::string path = TempPath("badmagic.bin");
  WriteFile(path, "garbage data that is not a snapshot at all........");
  std::string error;
  EXPECT_FALSE(LoadBinary(path, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST_F(GraphIoTest, BinaryRejectsTruncatedPayload) {
  const BipartiteGraph g = ChungLuBipartite(40, 30, 150, 0.4, 0.4, 29);
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(SaveBinary(g, path));
  // Truncate: drop the trailing half of the file.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  std::string error;
  EXPECT_FALSE(LoadBinary(path, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST_F(GraphIoTest, BinaryRejectsZeroLengthFile) {
  const std::string path = TempPath("zero_length.bin");
  WriteFile(path, "");
  std::string error;
  EXPECT_FALSE(LoadBinary(path, &error).has_value());
  EXPECT_NE(error.find("empty file"), std::string::npos) << error;
}

TEST_F(GraphIoTest, BinaryRejectsTruncatedHeader) {
  const std::string path = TempPath("short_header.bin");
  // 8 bytes: the header cuts off after the magic field.
  WriteFile(path, std::string("RECEIPT1"));
  std::string error;
  EXPECT_FALSE(LoadBinary(path, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST_F(GraphIoTest, BinaryRejectsEdgeOutOfDeclaredRange) {
  const BipartiteGraph g = ChungLuBipartite(20, 20, 60, 0.5, 0.5, 31);
  const std::string path = TempPath("bad_range.bin");
  ASSERT_TRUE(SaveBinary(g, path));
  // Shrink the declared num_u below the real max id: every stored edge with
  // u >= 1 is now out of range.
  std::fstream patch(path,
                     std::ios::binary | std::ios::in | std::ios::out);
  const uint64_t tiny = 1;
  patch.seekp(8);  // past the magic, onto num_u
  patch.write(reinterpret_cast<const char*>(&tiny), sizeof(tiny));
  patch.close();
  std::string error;
  EXPECT_FALSE(LoadBinary(path, &error).has_value());
  EXPECT_NE(error.find("out of declared range"), std::string::npos) << error;
}

TEST_F(GraphIoTest, EmptyGraphRoundTripsBothFormats) {
  const BipartiteGraph g = BipartiteGraph::FromEdges(0, 0, {});
  const std::string konect_path = TempPath("empty.konect");
  const std::string binary_path = TempPath("empty.bin");
  ASSERT_TRUE(SaveKonect(g, konect_path));
  ASSERT_TRUE(SaveBinary(g, binary_path));
  ASSERT_TRUE(LoadKonect(konect_path).has_value());
  const auto loaded = LoadBinary(binary_path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_edges(), 0u);
}

}  // namespace
}  // namespace receipt
