// Cross-module integration and property tests: three-algorithm agreement on
// the paper-analogue datasets, the peeling-certificate property of tip
// numbers, monotonicity under edge addition, and the paper's headline
// statistics relationships (RECEIPT ≪ ParB sync rounds, HUC wedge savings).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "butterfly/butterfly_count.h"
#include "graph/generators.h"
#include "graph/induced_subgraph.h"
#include "tip/bup.h"
#include "tip/parb.h"
#include "tip/receipt.h"
#include "tip/tip_hierarchy.h"

namespace receipt {
namespace {

TipOptions Options(Side side, int partitions, int threads) {
  TipOptions options;
  options.side = side;
  options.num_partitions = partitions;
  options.num_threads = threads;
  return options;
}

TEST(IntegrationTest, ThreeAlgorithmsAgreeOnAnalogue) {
  // Scaled-down "it" analogue, both sides — a full Table-3-style row.
  const BipartiteGraph g = ChungLuBipartite(800, 200, 4000, 0.40, 0.85, 201);
  for (const Side side : {Side::kU, Side::kV}) {
    const TipResult bup = BupDecompose(g, Options(side, 1, 1));
    const TipResult parb = ParbDecompose(g, Options(side, 1, 3));
    const TipResult rec = ReceiptDecompose(g, Options(side, 15, 3));
    EXPECT_EQ(bup.tip_numbers, parb.tip_numbers) << SideName(side);
    EXPECT_EQ(bup.tip_numbers, rec.tip_numbers) << SideName(side);
  }
}

TEST(IntegrationTest, ReceiptSlashesSyncRounds) {
  // The paper's headline claim (Table 3): ρ_RECEIPT ≪ ρ_ParB.
  const BipartiteGraph g = ChungLuBipartite(1500, 600, 8000, 0.5, 0.8, 203);
  const TipResult parb = ParbDecompose(g, Options(Side::kU, 1, 2));
  const TipResult rec = ReceiptDecompose(g, Options(Side::kU, 15, 2));
  EXPECT_GT(parb.stats.sync_rounds, 5 * rec.stats.sync_rounds)
      << "ParB " << parb.stats.sync_rounds << " vs RECEIPT "
      << rec.stats.sync_rounds;
}

TEST(IntegrationTest, OptimizationsReduceWedgeTraversal) {
  // Fig. 6 shape: RECEIPT ≤ RECEIPT- ≤ RECEIPT-- in traversed wedges on a
  // skewed (high-r) graph.
  const BipartiteGraph g = ChungLuBipartite(3000, 800, 12000, 0.4, 1.0, 207);
  TipOptions full = Options(Side::kU, 15, 2);
  TipOptions no_dgm = full;
  no_dgm.use_dgm = false;
  TipOptions neither = no_dgm;
  neither.use_huc = false;
  const TipResult r_full = ReceiptDecompose(g, full);
  const TipResult r_nodgm = ReceiptDecompose(g, no_dgm);
  const TipResult r_neither = ReceiptDecompose(g, neither);
  EXPECT_EQ(r_full.tip_numbers, r_neither.tip_numbers);
  EXPECT_LE(r_full.stats.TotalWedges(), r_nodgm.stats.TotalWedges());
  EXPECT_LT(r_nodgm.stats.TotalWedges(), r_neither.stats.TotalWedges());
}

TEST(IntegrationTest, PeelingCertificateProperty) {
  // Definition of tip number: within the subgraph induced by
  // {u' : θ_{u'} ≥ θ_u}, u participates in at least θ_u butterflies.
  const BipartiteGraph g = ChungLuBipartite(120, 80, 550, 0.6, 0.6, 211);
  const TipResult r = ReceiptDecompose(g, Options(Side::kU, 6, 2));
  std::vector<Count> distinct = r.tip_numbers;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  for (const Count level : distinct) {
    std::vector<VertexId> members;
    for (VertexId u = 0; u < g.num_u(); ++u) {
      if (r.tip_numbers[u] >= level) members.push_back(u);
    }
    const InducedSubgraph induced = BuildInducedSubgraph(g, members);
    const auto support = BruteForceButterflyCount(induced.graph);
    for (VertexId lu = 0; lu < induced.graph.num_u(); ++lu) {
      const VertexId gu = induced.u_global[lu];
      if (r.tip_numbers[gu] == level) {
        EXPECT_GE(support[lu] + 0, level) << "u" << gu << " at level "
                                          << level;
      }
    }
  }
}

TEST(IntegrationTest, TipNumbersMonotoneUnderEdgeAddition) {
  // Adding edges can only create butterflies: θ'_u ≥ θ_u pointwise.
  const BipartiteGraph small = ChungLuBipartite(80, 60, 300, 0.5, 0.5, 213);
  std::vector<BipartiteGraph::Edge> edges = small.ToEdges();
  const TipResult before =
      ReceiptDecompose(small, Options(Side::kU, 6, 2));
  // Densify: add 100 new deterministic edges.
  for (VertexId i = 0; i < 100; ++i) {
    edges.push_back({static_cast<VertexId>((i * 13) % 80),
                     static_cast<VertexId>((i * 29) % 60)});
  }
  const BipartiteGraph bigger = BipartiteGraph::FromEdges(80, 60, edges);
  const TipResult after =
      ReceiptDecompose(bigger, Options(Side::kU, 6, 2));
  for (VertexId u = 0; u < 80; ++u) {
    EXPECT_GE(after.tip_numbers[u], before.tip_numbers[u]) << "u" << u;
  }
}

TEST(IntegrationTest, EveryVertexInExactlyOneKTip) {
  const BipartiteGraph g = ChungLuBipartite(150, 90, 650, 0.5, 0.7, 217);
  const TipResult r = ReceiptDecompose(g, Options(Side::kU, 8, 2));
  const Count k = r.MaxTipNumber() / 3;
  const auto tips = ExtractKTips(g, Side::kU, r.tip_numbers, k);
  std::vector<int> membership(g.num_u(), 0);
  for (const KTip& tip : tips) {
    for (const VertexId u : tip.vertices) ++membership[u];
  }
  for (VertexId u = 0; u < g.num_u(); ++u) {
    EXPECT_EQ(membership[u], r.tip_numbers[u] >= k ? 1 : 0) << "u" << u;
  }
}

TEST(IntegrationTest, MaxTipNumberBelowMaxButterflies) {
  const BipartiteGraph g = ChungLuBipartite(200, 100, 800, 0.8, 0.8, 219);
  const TipResult r = ReceiptDecompose(g, Options(Side::kU, 8, 2));
  const auto support = CountButterflies(g, 2);
  const Count max_support =
      *std::max_element(support.begin(), support.begin() + g.num_u());
  EXPECT_LE(r.MaxTipNumber(), max_support);
}

TEST(IntegrationTest, AffiliationSpamBlockSurfacesAtTop) {
  // The spam-detection scenario (§1): a planted collusive block must hold
  // the highest tip numbers.
  std::vector<CommunitySpec> communities = {
      {.num_users = 12, .num_items = 10, .density = 1.0}};
  const BipartiteGraph g = AffiliationGraph(400, 200, communities, 1200, 221);
  const TipResult r = ReceiptDecompose(g, Options(Side::kU, 8, 2));
  // Rank vertices by tip number; the 12 colluders must be the top 12.
  std::vector<VertexId> by_tip(g.num_u());
  std::iota(by_tip.begin(), by_tip.end(), 0);
  std::sort(by_tip.begin(), by_tip.end(), [&r](VertexId a, VertexId b) {
    return r.tip_numbers[a] > r.tip_numbers[b];
  });
  for (int i = 0; i < 12; ++i) {
    EXPECT_LT(by_tip[i], 12u) << "rank " << i << " is vertex " << by_tip[i];
  }
}

}  // namespace
}  // namespace receipt
