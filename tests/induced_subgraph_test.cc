// Unit tests for induced subgraph construction (RECEIPT FD substrate): id
// mappings and the Theorem-2 requirement that intra-subset butterflies
// survive induction.

#include "graph/induced_subgraph.h"

#include <gtest/gtest.h>

#include <set>

#include "butterfly/butterfly_count.h"
#include "graph/generators.h"

namespace receipt {
namespace {

TEST(InducedSubgraphTest, MappingsAreConsistent) {
  const BipartiteGraph g = ChungLuBipartite(60, 40, 250, 0.5, 0.5, 41);
  const std::vector<VertexId> subset = {3, 7, 10, 25, 59};
  const InducedSubgraph induced = BuildInducedSubgraph(g, subset);
  const BipartiteGraph& sg = induced.graph;

  ASSERT_EQ(induced.u_global.size(), subset.size());
  EXPECT_EQ(sg.num_u(), subset.size());
  EXPECT_TRUE(sg.Validate().empty()) << sg.Validate();

  // Every local edge corresponds to a global edge.
  for (VertexId lu = 0; lu < sg.num_u(); ++lu) {
    const VertexId gu = induced.u_global[lu];
    EXPECT_EQ(sg.Degree(lu), g.Degree(gu));
    for (const VertexId lv : sg.Neighbors(lu)) {
      const VertexId gv = g.VGlobal(induced.v_global[sg.Local(lv)]);
      const auto gn = g.Neighbors(gu);
      EXPECT_TRUE(std::binary_search(gn.begin(), gn.end(), gv));
    }
  }
}

TEST(InducedSubgraphTest, OnlyTouchedVVerticesMaterialized) {
  // u0 -> {v0}, u1 -> {v5}; inducing on {u0} must keep a single V vertex.
  const BipartiteGraph g =
      BipartiteGraph::FromEdges(2, 6, {{0, 0}, {1, 5}});
  const std::vector<VertexId> subset = {0};
  const InducedSubgraph induced = BuildInducedSubgraph(g, subset);
  EXPECT_EQ(induced.graph.num_v(), 1u);
  EXPECT_EQ(induced.v_global[0], 0u);
  EXPECT_EQ(induced.graph.num_edges(), 1u);
}

TEST(InducedSubgraphTest, IntraSubsetButterfliesPreserved) {
  const BipartiteGraph g = ChungLuBipartite(80, 50, 400, 0.6, 0.6, 43);
  std::vector<VertexId> subset;
  for (VertexId u = 0; u < g.num_u(); u += 2) subset.push_back(u);
  const InducedSubgraph induced = BuildInducedSubgraph(g, subset);

  const std::vector<Count> local_support =
      BruteForceButterflyCount(induced.graph);
  // Reference: count butterflies of the full graph restricted to pairs
  // inside the subset.
  const std::set<VertexId> in_subset(subset.begin(), subset.end());
  for (VertexId lu = 0; lu < induced.graph.num_u(); ++lu) {
    const VertexId gu = induced.u_global[lu];
    Count expected = 0;
    for (const VertexId gu2 : in_subset) {
      if (gu2 == gu) continue;
      expected += SharedButterflies(g, gu, gu2);
    }
    EXPECT_EQ(local_support[lu], expected) << "u" << gu;
  }
}

TEST(InducedSubgraphTest, FullSubsetReproducesOriginalButterflies) {
  const BipartiteGraph g = ChungLuBipartite(50, 30, 250, 0.4, 0.8, 47);
  std::vector<VertexId> all(g.num_u());
  for (VertexId u = 0; u < g.num_u(); ++u) all[u] = u;
  const InducedSubgraph induced = BuildInducedSubgraph(g, all);
  const auto original = CountButterflies(g, 1);
  const auto induced_counts = CountButterflies(induced.graph, 1);
  for (VertexId u = 0; u < g.num_u(); ++u) {
    EXPECT_EQ(induced_counts[u], original[u]);
  }
}

TEST(InducedSubgraphTest, EmptySubset) {
  const BipartiteGraph g = CompleteBipartite(3, 3);
  const InducedSubgraph induced = BuildInducedSubgraph(g, {});
  EXPECT_EQ(induced.graph.num_u(), 0u);
  EXPECT_EQ(induced.graph.num_v(), 0u);
  EXPECT_EQ(induced.graph.num_edges(), 0u);
}

TEST(InducedSubgraphArenaTest, ArenaBuildMatchesAllocatingBuild) {
  const BipartiteGraph g = ChungLuBipartite(70, 45, 320, 0.6, 0.6, 53);
  InducedSubgraphArena arena;
  // Alternate between overlapping subsets of different shapes: every build
  // must match the allocating overload bit for bit, regardless of what the
  // arena held before.
  const std::vector<std::vector<VertexId>> subsets = {
      {0, 5, 9, 33, 60}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 40, 69},
      {0, 5, 9, 33, 60}, {12}, {},
  };
  for (const std::vector<VertexId>& subset : subsets) {
    const InducedSubgraph fresh = BuildInducedSubgraph(g, subset);
    const InducedSubgraph& reused = BuildInducedSubgraph(g, subset, arena);
    EXPECT_EQ(reused.u_global, fresh.u_global);
    EXPECT_EQ(reused.v_global, fresh.v_global);
    EXPECT_EQ(reused.graph.num_u(), fresh.graph.num_u());
    EXPECT_EQ(reused.graph.num_v(), fresh.graph.num_v());
    EXPECT_EQ(reused.graph.ToEdges(), fresh.graph.ToEdges());
    EXPECT_TRUE(reused.graph.Validate().empty()) << reused.graph.Validate();
  }
}

TEST(InducedSubgraphArenaTest, NoAllocationGrowthAfterWarmup) {
  const BipartiteGraph g = ChungLuBipartite(80, 50, 400, 0.6, 0.6, 59);
  std::vector<std::vector<VertexId>> subsets;
  for (VertexId start = 0; start < 4; ++start) {
    std::vector<VertexId> subset;
    for (VertexId u = start; u < g.num_u(); u += 4) subset.push_back(u);
    subsets.push_back(std::move(subset));
  }

  InducedSubgraphArena arena;
  // Warmup pass: grows every buffer to the largest subset's footprint, and
  // also exercises the DynamicGraph/ranks half of the arena the way the FD
  // driver does.
  for (const std::vector<VertexId>& subset : subsets) {
    const InducedSubgraph& induced = BuildInducedSubgraph(g, subset, arena);
    induced.graph.DegreeDescendingRanksInto(arena.ranks, arena.rank_scratch);
    arena.live.Reset(induced.graph, arena.ranks);
  }
  const uint64_t growths_warm = arena.growths;
  EXPECT_GT(growths_warm, 0u);
  // The growth counter is charged per build; the raw footprint also covers
  // the live/ranks half grown by the caller between builds.
  const size_t footprint_warm = arena.CapacityFootprint();

  // Steady state: the same partition mix rebuilds allocation-free.
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (const std::vector<VertexId>& subset : subsets) {
      const InducedSubgraph& induced = BuildInducedSubgraph(g, subset, arena);
      induced.graph.DegreeDescendingRanksInto(arena.ranks,
                                              arena.rank_scratch);
      arena.live.Reset(induced.graph, arena.ranks);
    }
  }
  EXPECT_EQ(arena.growths, growths_warm);
  EXPECT_EQ(arena.CapacityFootprint(), footprint_warm);
}

}  // namespace
}  // namespace receipt
