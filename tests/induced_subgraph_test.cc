// Unit tests for induced subgraph construction (RECEIPT FD substrate): id
// mappings and the Theorem-2 requirement that intra-subset butterflies
// survive induction.

#include "graph/induced_subgraph.h"

#include <gtest/gtest.h>

#include <set>

#include "butterfly/butterfly_count.h"
#include "graph/generators.h"

namespace receipt {
namespace {

TEST(InducedSubgraphTest, MappingsAreConsistent) {
  const BipartiteGraph g = ChungLuBipartite(60, 40, 250, 0.5, 0.5, 41);
  const std::vector<VertexId> subset = {3, 7, 10, 25, 59};
  const InducedSubgraph induced = BuildInducedSubgraph(g, subset);
  const BipartiteGraph& sg = induced.graph;

  ASSERT_EQ(induced.u_global.size(), subset.size());
  EXPECT_EQ(sg.num_u(), subset.size());
  EXPECT_TRUE(sg.Validate().empty()) << sg.Validate();

  // Every local edge corresponds to a global edge.
  for (VertexId lu = 0; lu < sg.num_u(); ++lu) {
    const VertexId gu = induced.u_global[lu];
    EXPECT_EQ(sg.Degree(lu), g.Degree(gu));
    for (const VertexId lv : sg.Neighbors(lu)) {
      const VertexId gv = g.VGlobal(induced.v_global[sg.Local(lv)]);
      const auto gn = g.Neighbors(gu);
      EXPECT_TRUE(std::binary_search(gn.begin(), gn.end(), gv));
    }
  }
}

TEST(InducedSubgraphTest, OnlyTouchedVVerticesMaterialized) {
  // u0 -> {v0}, u1 -> {v5}; inducing on {u0} must keep a single V vertex.
  const BipartiteGraph g =
      BipartiteGraph::FromEdges(2, 6, {{0, 0}, {1, 5}});
  const std::vector<VertexId> subset = {0};
  const InducedSubgraph induced = BuildInducedSubgraph(g, subset);
  EXPECT_EQ(induced.graph.num_v(), 1u);
  EXPECT_EQ(induced.v_global[0], 0u);
  EXPECT_EQ(induced.graph.num_edges(), 1u);
}

TEST(InducedSubgraphTest, IntraSubsetButterfliesPreserved) {
  const BipartiteGraph g = ChungLuBipartite(80, 50, 400, 0.6, 0.6, 43);
  std::vector<VertexId> subset;
  for (VertexId u = 0; u < g.num_u(); u += 2) subset.push_back(u);
  const InducedSubgraph induced = BuildInducedSubgraph(g, subset);

  const std::vector<Count> local_support =
      BruteForceButterflyCount(induced.graph);
  // Reference: count butterflies of the full graph restricted to pairs
  // inside the subset.
  const std::set<VertexId> in_subset(subset.begin(), subset.end());
  for (VertexId lu = 0; lu < induced.graph.num_u(); ++lu) {
    const VertexId gu = induced.u_global[lu];
    Count expected = 0;
    for (const VertexId gu2 : in_subset) {
      if (gu2 == gu) continue;
      expected += SharedButterflies(g, gu, gu2);
    }
    EXPECT_EQ(local_support[lu], expected) << "u" << gu;
  }
}

TEST(InducedSubgraphTest, FullSubsetReproducesOriginalButterflies) {
  const BipartiteGraph g = ChungLuBipartite(50, 30, 250, 0.4, 0.8, 47);
  std::vector<VertexId> all(g.num_u());
  for (VertexId u = 0; u < g.num_u(); ++u) all[u] = u;
  const InducedSubgraph induced = BuildInducedSubgraph(g, all);
  const auto original = CountButterflies(g, 1);
  const auto induced_counts = CountButterflies(induced.graph, 1);
  for (VertexId u = 0; u < g.num_u(); ++u) {
    EXPECT_EQ(induced_counts[u], original[u]);
  }
}

TEST(InducedSubgraphTest, EmptySubset) {
  const BipartiteGraph g = CompleteBipartite(3, 3);
  const InducedSubgraph induced = BuildInducedSubgraph(g, {});
  EXPECT_EQ(induced.graph.num_u(), 0u);
  EXPECT_EQ(induced.graph.num_v(), 0u);
  EXPECT_EQ(induced.graph.num_edges(), 0u);
}

}  // namespace
}  // namespace receipt
