// Frontier-driven peel scheduling (Julienne-style direction optimization):
// the engine may rebuild each round's active set either by merging the
// per-thread workspace frontiers or by a full parallel scan. These suites
// pin the contract that both directions are bit-identical — same tip/wing
// numbers, same subsets, same bounds — across every driver, that the
// direction counters report what actually ran, and that the epoch bitmap
// dedups multi-neighbor decrements (the candidate-duplication regression).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>
#include <vector>

#include "engine/workspace.h"
#include "graph/generators.h"
#include "tip/bup.h"
#include "tip/receipt.h"
#include "wing/receipt_wing.h"
#include "wing/wing_decomposition.h"

namespace receipt {
namespace {

// Force one rebuild direction: ≤ 0 = always scan, > 1 = always frontier.
// Forcing only works under the fixed-density switch — the measured-cost
// default consults the EWMA cost gauges first — so every direction-forcing
// run below pins FrontierSwitch::kFixedDensity.
constexpr double kScanOnly = 0.0;
constexpr double kFrontierOnly = 2.0;

TEST(FrontierEpochsTest, ClaimsOncePerRound) {
  engine::FrontierEpochs epochs;
  epochs.Reset(8);
  epochs.NextRound();
  EXPECT_TRUE(epochs.Claim(3));
  EXPECT_FALSE(epochs.Claim(3));  // second decrement in the same round
  EXPECT_TRUE(epochs.Claim(5));
  epochs.NextRound();
  EXPECT_TRUE(epochs.Claim(3));  // new round, claimable again
  EXPECT_FALSE(epochs.Claim(3));
  // Reset rewinds everything.
  epochs.Reset(8);
  epochs.NextRound();
  EXPECT_TRUE(epochs.Claim(3));
}

class FrontierTipSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, uint32_t>> {};

TEST_P(FrontierTipSweep, DirectionsAreBitIdentical) {
  const auto [num_u, num_v, num_edges, seed] = GetParam();
  const BipartiteGraph g = ChungLuBipartite(
      static_cast<VertexId>(num_u), static_cast<VertexId>(num_v),
      static_cast<uint64_t>(num_edges), 0.6, 0.6, seed);

  for (const Side side : {Side::kU, Side::kV}) {
    TipOptions bup_options;
    bup_options.side = side;
    const TipResult bup = BupDecompose(g, bup_options);

    for (const int partitions : {2, 6}) {
      for (const bool optimized : {false, true}) {
        TipOptions options;
        options.side = side;
        options.num_threads = 2;
        options.num_partitions = partitions;
        options.use_huc = optimized;
        options.use_dgm = optimized;
        options.frontier_switch = FrontierSwitch::kFixedDensity;

        options.frontier_density_threshold = kScanOnly;
        const TipResult scan = ReceiptDecompose(g, options);
        options.frontier_density_threshold = kFrontierOnly;
        const TipResult frontier = ReceiptDecompose(g, options);
        options.frontier_density_threshold = kDefaultFrontierDensity;
        const TipResult hybrid = ReceiptDecompose(g, options);

        // Bit-identical coarse artifacts, not just final numbers.
        EXPECT_EQ(scan.tip_numbers, bup.tip_numbers);
        EXPECT_EQ(frontier.tip_numbers, scan.tip_numbers);
        EXPECT_EQ(hybrid.tip_numbers, scan.tip_numbers);
        EXPECT_EQ(frontier.subsets, scan.subsets);
        EXPECT_EQ(hybrid.subsets, scan.subsets);
        EXPECT_EQ(frontier.range_bounds, scan.range_bounds);
        EXPECT_EQ(frontier.subset_of, scan.subset_of);

        // Identical peeling structure: the direction changes how active
        // sets are rebuilt, never what they contain.
        EXPECT_EQ(frontier.stats.sync_rounds, scan.stats.sync_rounds);
        EXPECT_EQ(frontier.stats.TotalWedges(), scan.stats.TotalWedges());

        // The counters report the direction that actually ran. Initial
        // active sets come from the SupportIndex member lists (the default),
        // so forced-frontier runs perform no scans at all.
        EXPECT_EQ(scan.stats.frontier_rounds, 0u);
        EXPECT_GT(scan.stats.scan_rounds, 0u);
        // One index build per range, plus one per HUC-forced full rebuild.
        EXPECT_GE(scan.stats.index_build_rounds, scan.stats.num_subsets);
        if (!optimized) {
          // Without HUC re-counts, a frontier-only run builds from the
          // index exactly once per range and never scans.
          EXPECT_EQ(frontier.stats.scan_rounds, 0u);
          EXPECT_EQ(frontier.stats.index_build_rounds,
                    frontier.stats.num_subsets);
        }
        // The sparse direction examines no more elements than the dense
        // one, and strictly fewer whenever any frontier round ran.
        EXPECT_LE(frontier.stats.active_scan_elements,
                  scan.stats.active_scan_elements);
        if (frontier.stats.frontier_rounds > 0) {
          EXPECT_LT(frontier.stats.active_scan_elements,
                    scan.stats.active_scan_elements);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FrontierTipSweep,
    ::testing::Values(std::make_tuple(70, 45, 340, 71u),
                      std::make_tuple(90, 60, 450, 73u),
                      std::make_tuple(55, 80, 400, 79u)));

class FrontierWingSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, uint32_t>> {};

TEST_P(FrontierWingSweep, DirectionsAreBitIdentical) {
  const auto [num_u, num_v, num_edges, seed] = GetParam();
  const BipartiteGraph g = ChungLuBipartite(
      static_cast<VertexId>(num_u), static_cast<VertexId>(num_v),
      static_cast<uint64_t>(num_edges), 0.5, 0.5, seed);

  const WingResult sequential = WingDecompose(g, /*num_threads=*/1);

  for (const int partitions : {2, 5}) {
    for (const int threads : {1, 3}) {
      ReceiptWingOptions options;
      options.num_threads = threads;
      options.num_partitions = partitions;
      options.frontier_switch = FrontierSwitch::kFixedDensity;

      options.frontier_density_threshold = kScanOnly;
      const WingResult scan = ReceiptWingDecompose(g, options);
      options.frontier_density_threshold = kFrontierOnly;
      const WingResult frontier = ReceiptWingDecompose(g, options);
      options.frontier_density_threshold = kDefaultFrontierDensity;
      const WingResult hybrid = ReceiptWingDecompose(g, options);

      EXPECT_EQ(scan.wing_numbers, sequential.wing_numbers);
      EXPECT_EQ(frontier.wing_numbers, sequential.wing_numbers);
      EXPECT_EQ(hybrid.wing_numbers, sequential.wing_numbers);
      EXPECT_EQ(frontier.stats.sync_rounds, scan.stats.sync_rounds);
      EXPECT_EQ(frontier.stats.num_subsets, scan.stats.num_subsets);

      EXPECT_EQ(scan.stats.frontier_rounds, 0u);
      // Edge peeling never re-counts, so the frontier-only coarse step
      // builds from the index exactly once per range and never scans.
      EXPECT_EQ(frontier.stats.scan_rounds, 0u);
      EXPECT_EQ(frontier.stats.index_build_rounds,
                frontier.stats.num_subsets);
      EXPECT_LE(frontier.stats.active_scan_elements,
                scan.stats.active_scan_elements);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FrontierWingSweep,
    ::testing::Values(std::make_tuple(25, 20, 110, 81u),
                      std::make_tuple(30, 16, 125, 83u)));

// Regression for the candidate-duplication hazard in the tracked-candidates
// path of RangeDecomposer::PeelRange: u4's support is decremented by six
// different vertices peeled in one round (four K_{5,2} partners plus the
// u5/u6 block), so without the epoch-bitmap dedup it would enter the next
// active set — and therefore its subset — more than once.
TEST(FrontierRegressionTest, MultiDecrementVertexEntersActiveSetOnce) {
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = 0; v < 2; ++v) edges.push_back({u, v});
  }
  for (VertexId u = 4; u < 7; ++u) {
    for (VertexId v = 2; v < 4; ++v) edges.push_back({u, v});
  }
  const BipartiteGraph g = BipartiteGraph::FromEdges(7, 4, edges);

  TipOptions bup_options;
  const TipResult bup = BupDecompose(g, bup_options);

  for (const double threshold : {kScanOnly, kFrontierOnly}) {
    for (const int threads : {1, 3}) {
      TipOptions options;
      options.num_threads = threads;
      options.num_partitions = 2;
      options.use_huc = false;
      options.use_dgm = false;
      options.frontier_switch = FrontierSwitch::kFixedDensity;
      options.frontier_density_threshold = threshold;
      const TipResult r = ReceiptDecompose(g, options);

      // Subsets partition U exactly: every vertex peeled exactly once.
      std::vector<VertexId> peeled;
      for (const auto& subset : r.subsets) {
        peeled.insert(peeled.end(), subset.begin(), subset.end());
      }
      ASSERT_EQ(peeled.size(), static_cast<size_t>(g.num_u()));
      std::sort(peeled.begin(), peeled.end());
      std::vector<VertexId> expected(g.num_u());
      std::iota(expected.begin(), expected.end(), 0);
      EXPECT_EQ(peeled, expected)
          << "threshold " << threshold << ", threads " << threads;
      EXPECT_EQ(r.tip_numbers, bup.tip_numbers);
    }
  }
}

}  // namespace
}  // namespace receipt
