// Replicated-serving suite (`ctest -L cluster`): hash-ring placement,
// replica fan-out over real loopback HTTP, router failover, crash/rejoin
// at the recorded epoch, and the offline PRAM trace checker.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/consistency.h"
#include "cluster/hash_ring.h"
#include "cluster/http_client.h"
#include "cluster/node.h"
#include "cluster/router.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "obs/client_trace.h"
#include "server/decomposition_http.h"
#include "server/http_server.h"
#include "service/decomposition_service.h"
#include "service/graph_registry.h"
#include "util/json.h"

namespace receipt::cluster {
namespace {

class TempDir {
 public:
  TempDir() {
    std::string tmpl = "/tmp/receipt_cluster_XXXXXX";
    path_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// Hash ring
// ---------------------------------------------------------------------------

TEST(HashRingTest, OwnershipIsDeterministicAndOrderIndependent) {
  const HashRing ring_abc({"a", "b", "c"});
  const HashRing ring_cba({"c", "b", "a"});
  const std::set<std::string> members = {"a", "b", "c"};
  std::set<std::string> owners_seen;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "graph-" + std::to_string(i);
    const std::string& owner = ring_abc.Owner(key);
    EXPECT_TRUE(members.count(owner)) << key;
    EXPECT_EQ(owner, ring_cba.Owner(key)) << key;
    owners_seen.insert(owner);
  }
  // 64 vnodes per member over 200 keys: every member owns something.
  EXPECT_EQ(owners_seen.size(), 3u);
}

TEST(HashRingTest, HoldersAreDistinctOwnerFirstAndCapped) {
  const HashRing ring({"a", "b", "c"});
  for (int i = 0; i < 50; ++i) {
    const std::string key = "g" + std::to_string(i);
    const std::vector<std::string> holders = ring.Holders(key, 2);
    ASSERT_EQ(holders.size(), 2u);
    EXPECT_EQ(holders[0], ring.Owner(key));
    EXPECT_NE(holders[0], holders[1]);
    // Asking for more members than exist returns them all, once each.
    const std::vector<std::string> all = ring.Holders(key, 10);
    EXPECT_EQ(all.size(), 3u);
    EXPECT_EQ(std::set<std::string>(all.begin(), all.end()).size(), 3u);
  }
}

TEST(HashRingTest, RemovingAMemberRemapsOnlyItsOwnKeys) {
  const HashRing before({"a", "b", "c"});
  const HashRing after({"a", "b"});
  int moved = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "graph-" + std::to_string(i);
    if (before.Owner(key) == "c") {
      ++moved;
      continue;  // c's keys must land somewhere else; anywhere is legal
    }
    EXPECT_EQ(before.Owner(key), after.Owner(key)) << key;
  }
  EXPECT_GT(moved, 0);    // c owned a share...
  EXPECT_LT(moved, 500);  // ...but not everything
}

TEST(HashRingTest, DuplicateIdsCollapse) {
  const HashRing ring({"a", "a", "b"});
  EXPECT_EQ(ring.members().size(), 2u);
}

// ---------------------------------------------------------------------------
// Member-spec parsing
// ---------------------------------------------------------------------------

TEST(ParseClusterMembersTest, AcceptsHostPortAndBarePortForms) {
  std::vector<ClusterMember> members;
  std::string error;
  ASSERT_TRUE(
      ParseClusterMembers("a=10.0.0.1:18201,b=18202", &members, &error))
      << error;
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].id, "a");
  EXPECT_EQ(members[0].host, "10.0.0.1");
  EXPECT_EQ(members[0].port, 18201);
  EXPECT_EQ(members[1].host, "127.0.0.1");
  EXPECT_EQ(members[1].port, 18202);
}

TEST(ParseClusterMembersTest, RejectsMalformedSpecs) {
  std::vector<ClusterMember> members;
  std::string error;
  EXPECT_FALSE(ParseClusterMembers("a", &members, &error));
  EXPECT_FALSE(ParseClusterMembers("=18201", &members, &error));
  EXPECT_FALSE(ParseClusterMembers("a=notaport", &members, &error));
}

// ---------------------------------------------------------------------------
// PRAM checker
// ---------------------------------------------------------------------------

TraceOp Op(uint64_t seq, const std::string& client, bool read,
           const std::string& graph, uint64_t epoch) {
  TraceOp op;
  op.seq = seq;
  op.client = client;
  op.read = read;
  op.graph = graph;
  op.epoch = epoch;
  op.request_id = "r" + std::to_string(seq);
  op.file = "test";
  op.line = seq + 1;
  return op;
}

TEST(ConsistencyTest, LegalHistoryPasses) {
  const std::vector<TraceOp> ops = {
      Op(0, "c1", false, "g", 1), Op(1, "c1", true, "g", 1),
      Op(2, "c2", true, "g", 1),  Op(3, "c1", false, "g", 2),
      Op(4, "c2", true, "g", 2),  Op(5, "c1", true, "g", 2),
      // Unsealed batches repeat the epoch: writes are non-strict.
      Op(6, "c1", false, "g", 2), Op(7, "c2", true, "g", 2),
  };
  EXPECT_FALSE(CheckPramConsistency(ops).has_value());
}

TEST(ConsistencyTest, ReadGoingBackwardsIsReadMonotonicViolation) {
  const std::vector<TraceOp> ops = {
      Op(0, "c1", false, "g", 1), Op(1, "c1", false, "g", 2),
      Op(2, "c2", true, "g", 2),  Op(3, "c2", true, "g", 1),
  };
  const auto violation = CheckPramConsistency(ops);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->rule, "read-monotonic");
  EXPECT_EQ(violation->first.seq, 2u);
  EXPECT_EQ(violation->second.seq, 3u);
}

TEST(ConsistencyTest, ReadBelowOwnAckedWriteIsReadYourWritesViolation) {
  const std::vector<TraceOp> ops = {
      Op(0, "c1", false, "g", 1),
      Op(1, "c1", false, "g", 2),
      Op(2, "c1", true, "g", 1),
  };
  const auto violation = CheckPramConsistency(ops);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->rule, "read-your-writes");
  EXPECT_EQ(violation->first.seq, 1u);
  EXPECT_EQ(violation->second.seq, 2u);
}

TEST(ConsistencyTest, RegressingAckedWritesIsWriteMonotonicViolation) {
  const std::vector<TraceOp> ops = {
      Op(0, "c1", false, "g", 3),
      Op(1, "c1", false, "g", 2),
  };
  const auto violation = CheckPramConsistency(ops);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->rule, "write-monotonic");
}

TEST(ConsistencyTest, ReadOfEpochNoWriteProducedIsFlagged) {
  const std::vector<TraceOp> ops = {
      Op(0, "c1", false, "g", 1),
      Op(1, "c1", false, "g", 2),
      Op(2, "c2", true, "g", 7),
  };
  const auto violation = CheckPramConsistency(ops);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->rule, "read-of-unwritten-epoch");
}

TEST(ConsistencyTest, GraphsWithNoTracedWritesAreExemptFromWriteSet) {
  // Pre-registered graphs are read at epochs no traced write produced;
  // that is legal as long as the per-client reads stay monotonic.
  const std::vector<TraceOp> ops = {
      Op(0, "c1", true, "seeded", 5),
      Op(1, "c1", true, "seeded", 5),
  };
  EXPECT_FALSE(CheckPramConsistency(ops).has_value());
}

TEST(ConsistencyTest, StreamsAreIndependentPerClientAndGraph) {
  // Epoch orderings interleaved across clients/graphs are fine; PRAM only
  // constrains each (client, graph) stream.
  const std::vector<TraceOp> ops = {
      Op(0, "c1", false, "g1", 1), Op(1, "c2", false, "g2", 5),
      Op(2, "c1", true, "g1", 1),  Op(3, "c2", true, "g2", 5),
      Op(4, "c1", true, "g2", 5),  Op(5, "c2", true, "g1", 1),
  };
  EXPECT_FALSE(CheckPramConsistency(ops).has_value());
}

TEST(ConsistencyTest, ViolationFormatNamesBothOps) {
  const std::vector<TraceOp> ops = {
      Op(0, "c1", false, "g", 2),
      Op(1, "c1", true, "g", 1),
  };
  const auto violation = CheckPramConsistency(ops);
  ASSERT_TRUE(violation.has_value());
  const std::string text = FormatViolation(*violation);
  EXPECT_NE(text.find("violating pair"), std::string::npos);
  EXPECT_NE(text.find("seq=0"), std::string::npos);
  EXPECT_NE(text.find("seq=1"), std::string::npos);
}

TEST(ClientTraceTest, LogAndParserRoundTrip) {
  TempDir dir;
  const std::string path = dir.path() + "/trace.jsonl";
  {
    obs::ClientTraceLog log;
    std::string error;
    ASSERT_TRUE(log.Open(path, &error)) << error;
    obs::ClientTraceRecord record;
    record.client = "c1";
    record.read = false;
    record.graph = "g";
    record.epoch = 1;
    record.request_id = "req-1";
    log.Record(record);
    record.read = true;
    record.request_id = "req-2";
    log.Record(record);
    EXPECT_EQ(log.records_written(), 2u);
  }
  std::vector<TraceOp> ops;
  std::string error;
  ASSERT_TRUE(ParseTraceFile(path, &ops, &error)) << error;
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].client, "c1");
  EXPECT_FALSE(ops[0].read);
  EXPECT_EQ(ops[0].graph, "g");
  EXPECT_EQ(ops[0].epoch, 1u);
  EXPECT_EQ(ops[0].request_id, "req-1");
  EXPECT_TRUE(ops[1].read);
  EXPECT_EQ(ops[1].seq, 1u);
  EXPECT_FALSE(CheckPramConsistency(ops).has_value());
}

TEST(ClientTraceTest, ParserRejectsMistypedRecords) {
  TempDir dir;
  const std::string path = dir.path() + "/bad.jsonl";
  std::ofstream(path) << "{\"seq\":0,\"client\":\"c\",\"op\":\"peek\","
                         "\"graph\":\"g\",\"epoch\":1,\"request_id\":\"r\"}\n";
  std::vector<TraceOp> ops;
  std::string error;
  EXPECT_FALSE(ParseTraceFile(path, &ops, &error));
  EXPECT_NE(error.find(":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// In-process replica set
// ---------------------------------------------------------------------------

/// One replica process' worth of stack, in-process: registry + service +
/// frontend (no routes) + cluster node on an ephemeral port.
struct TestReplica {
  std::string id;
  std::unique_ptr<service::GraphRegistry> registry;
  std::unique_ptr<service::DecompositionService> service;
  std::unique_ptr<server::HttpServer> server;
  std::unique_ptr<server::DecompositionHttpFrontend> frontend;
  std::unique_ptr<ClusterNode> node;

  void Start(const std::string& self_id,
             const std::vector<std::string>& member_ids, size_t replication,
             bool proxy, const std::string& data_dir) {
    id = self_id;
    registry = std::make_unique<service::GraphRegistry>();
    service::ServiceOptions service_options;
    service_options.num_workers = 1;
    service_options.data_dir = data_dir;
    service = std::make_unique<service::DecompositionService>(*registry,
                                                              service_options);
    ASSERT_TRUE(service->durability_error().empty())
        << service->durability_error();
    server::HttpServerOptions http_options;
    http_options.port = 0;
    http_options.num_threads = 2;
    server = std::make_unique<server::HttpServer>(http_options);
    frontend = std::make_unique<server::DecompositionHttpFrontend>(
        *registry, *service, *server, /*register_routes=*/false);
    ClusterNodeOptions options;
    options.self_id = self_id;
    for (const std::string& member : member_ids) {
      options.members.push_back(ClusterMember{member, "127.0.0.1", 0});
    }
    options.replication_factor = replication;
    options.proxy = proxy;
    options.peer_timeout_ms = 5000;
    node = std::make_unique<ClusterNode>(options, *registry, *service,
                                         *frontend, *server);
    std::string error;
    ASSERT_TRUE(server->Start(&error)) << error;
  }

  void Stop() {
    if (server != nullptr) server->Stop();
    node.reset();
    frontend.reset();
    if (service != nullptr) service->Shutdown(/*drain=*/true);
    service.reset();
    server.reset();
    registry.reset();
  }

  uint16_t port() const { return server->port(); }
};

class ClusterFixture : public ::testing::Test {
 protected:
  static constexpr size_t kReplication = 2;

  void StartCluster(bool proxy = true, bool durable = false) {
    ids_ = {"a", "b", "c"};
    for (const std::string& id : ids_) {
      replicas_[id] = std::make_unique<TestReplica>();
      const std::string data_dir =
          durable ? dir_.path() + "/data-" + id : std::string();
      if (durable) std::filesystem::create_directories(data_dir);
      replicas_[id]->Start(id, ids_, kReplication, proxy, data_dir);
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
    }
    ConnectAll();
  }

  /// Every node learns every member's bound (ephemeral) port.
  void ConnectAll() {
    for (auto& [id, replica] : replicas_) {
      if (replica->node == nullptr) continue;
      for (auto& [peer_id, peer] : replicas_) {
        if (peer->server != nullptr) {
          replica->node->SetMemberEndpoint(peer_id, "127.0.0.1",
                                           peer->port());
        }
      }
    }
  }

  void TearDown() override {
    for (auto& [id, replica] : replicas_) replica->Stop();
  }

  HttpClientResponse Post(
      uint16_t port, const std::string& path, const std::string& body,
      std::vector<std::pair<std::string, std::string>> headers = {}) {
    HttpClientResponse response;
    std::string error;
    EXPECT_TRUE(client_.Post("127.0.0.1", port, path, body, headers,
                             &response, &error))
        << path << ": " << error;
    return response;
  }

  HttpClientResponse Get(uint16_t port, const std::string& path) {
    HttpClientResponse response;
    std::string error;
    EXPECT_TRUE(client_.Get("127.0.0.1", port, path, &response, &error))
        << path << ": " << error;
    return response;
  }

  /// Registers a 60x60 random graph under `name` through the node at
  /// `port` (any member: non-owners forward to the owner).
  void RegisterGraph(uint16_t port, const std::string& name) {
    const std::string file = dir_.path() + "/" + name + ".konect";
    ASSERT_TRUE(SaveKonect(RandomBipartite(60, 60, 400, /*seed=*/11), file));
    const auto response =
        Post(port, "/v1/graphs",
             "{\"name\":\"" + name + "\",\"path\":\"" + file + "\"}");
    ASSERT_EQ(response.status, 200) << response.body;
  }

  static std::vector<uint64_t> Numbers(const std::string& body) {
    const auto json = util::JsonValue::Parse(body);
    std::vector<uint64_t> numbers;
    if (!json.has_value()) return numbers;
    const util::JsonValue* array = json->Find("numbers");
    if (array == nullptr) return numbers;
    for (const util::JsonValue& item : array->Items()) {
      numbers.push_back(item.AsUint());
    }
    return numbers;
  }

  static uint64_t UintField(const std::string& body, const std::string& key) {
    const auto json = util::JsonValue::Parse(body);
    if (!json.has_value()) return 0;
    const util::JsonValue* field = json->Find(key);
    return field != nullptr && field->IsInt() ? field->AsUint() : 0;
  }

  TestReplica& Owner(const std::string& graph) {
    const HashRing ring(ids_);
    return *replicas_[ring.Owner(graph)];
  }

  std::vector<std::string> Holders(const std::string& graph) {
    return HashRing(ids_).Holders(graph, kReplication);
  }

  TempDir dir_;
  std::vector<std::string> ids_;
  std::map<std::string, std::unique_ptr<TestReplica>> replicas_;
  HttpClient client_{2000};
};

constexpr const char* kDecomposeBody =
    "{\"graph\":\"g\",\"kind\":\"tip-U\",\"partitions\":6}";

TEST_F(ClusterFixture, RegisterReplicatesToExactlyTheHolders) {
  StartCluster();
  RegisterGraph(replicas_["a"]->port(), "g");
  const std::set<std::string> holders = [this] {
    const auto list = Holders("g");
    return std::set<std::string>(list.begin(), list.end());
  }();
  ASSERT_EQ(holders.size(), kReplication);
  for (const std::string& id : ids_) {
    const auto info = Get(replicas_[id]->port(), "/v1/cluster/info");
    ASSERT_EQ(info.status, 200);
    const bool resident =
        info.body.find("\"name\":\"g\"") != std::string::npos;
    EXPECT_EQ(resident, holders.count(id) > 0) << id << ": " << info.body;
  }
}

TEST_F(ClusterFixture, SealedBatchesReplicateBitIdentically) {
  StartCluster();
  RegisterGraph(replicas_["b"]->port(), "g");
  const auto sealed =
      Post(Owner("g").port(), "/v1/graphs/g/edges",
           "{\"edges\":[{\"op\":\"insert\",\"u\":1,\"v\":2},"
           "{\"op\":\"insert\",\"u\":3,\"v\":4}],\"seal\":true}");
  ASSERT_EQ(sealed.status, 200) << sealed.body;
  EXPECT_EQ(UintField(sealed.body, "epoch"), 2u);

  std::vector<std::vector<uint64_t>> per_holder;
  for (const std::string& id : Holders("g")) {
    const auto response =
        Post(replicas_[id]->port(), "/v1/decompose", kDecomposeBody);
    ASSERT_EQ(response.status, 200) << id << ": " << response.body;
    EXPECT_EQ(UintField(response.body, "graph_epoch"), 2u) << id;
    per_holder.push_back(Numbers(response.body));
    ASSERT_FALSE(per_holder.back().empty()) << id;
  }
  ASSERT_EQ(per_holder.size(), kReplication);
  EXPECT_EQ(per_holder[0], per_holder[1]);
}

TEST_F(ClusterFixture, WritesThroughAnyMemberLandOnTheOwnerChain) {
  StartCluster();
  RegisterGraph(replicas_["c"]->port(), "g");
  // Push a sealed batch through every member in turn: each must forward
  // to the owner and come back with the next epoch in the chain.
  uint64_t expected_epoch = 1;
  for (const std::string& id : ids_) {
    const auto response =
        Post(replicas_[id]->port(), "/v1/graphs/g/edges",
             "{\"edges\":[{\"op\":\"insert\",\"u\":5,\"v\":" +
                 std::to_string(10 + expected_epoch) + "}],\"seal\":true}");
    ASSERT_EQ(response.status, 200) << id << ": " << response.body;
    ++expected_epoch;
    EXPECT_EQ(UintField(response.body, "epoch"), expected_epoch) << id;
  }
}

TEST_F(ClusterFixture, NonHolderRedirectsWhenProxyingIsOff) {
  StartCluster(/*proxy=*/false);
  RegisterGraph(Owner("g").port(), "g");
  const auto holders = Holders("g");
  const std::set<std::string> holder_set(holders.begin(), holders.end());
  for (const std::string& id : ids_) {
    if (holder_set.count(id)) continue;
    const auto response =
        Post(replicas_[id]->port(), "/v1/decompose", kDecomposeBody);
    EXPECT_EQ(response.status, 307) << id << ": " << response.body;
    const auto location = response.headers.find("location");
    ASSERT_NE(location, response.headers.end());
    EXPECT_NE(location->second.find("/v1/decompose"), std::string::npos);
  }
}

TEST_F(ClusterFixture, StaleReplicaRejectsReadsBelowTheMinEpoch) {
  StartCluster();
  RegisterGraph(replicas_["a"]->port(), "g");
  const std::string follower = Holders("g")[1];
  const auto stale = Post(replicas_[follower]->port(), "/v1/decompose",
                          kDecomposeBody, {{"X-Cluster-Min-Epoch", "99"}});
  EXPECT_EQ(stale.status, 412) << stale.body;
  const auto fresh = Post(replicas_[follower]->port(), "/v1/decompose",
                          kDecomposeBody, {{"X-Cluster-Min-Epoch", "1"}});
  EXPECT_EQ(fresh.status, 200) << fresh.body;
}

TEST_F(ClusterFixture, RouterSpreadsReadsAndFailsOverWhenAHolderDies) {
  StartCluster();
  RegisterGraph(replicas_["a"]->port(), "g");

  std::vector<ClusterMember> members;
  for (const std::string& id : ids_) {
    members.push_back(ClusterMember{id, "127.0.0.1", replicas_[id]->port()});
  }
  RouterOptions options;
  options.replication_factor = kReplication;
  options.health_interval_ms = 0;  // passive marking only: deterministic
  options.trace_log_path = dir_.path() + "/trace.jsonl";
  Router router(members, options);
  std::string error;
  ASSERT_TRUE(router.Start(&error)) << error;

  const std::vector<std::pair<std::string, std::string>> as_c1 = {
      {"X-Client-Id", "c1"}};
  auto first = Post(router.port(), "/v1/decompose", kDecomposeBody, as_c1);
  ASSERT_EQ(first.status, 200) << first.body;
  EXPECT_FALSE(first.headers["x-request-id"].empty());
  const std::vector<uint64_t> baseline = Numbers(first.body);

  // Kill one holder outright; reads must keep succeeding via the other.
  const std::string victim = Holders("g")[1];
  replicas_[victim]->Stop();
  for (int i = 0; i < 6; ++i) {
    const auto response =
        Post(router.port(), "/v1/decompose", kDecomposeBody, as_c1);
    ASSERT_EQ(response.status, 200) << i << ": " << response.body;
    EXPECT_EQ(Numbers(response.body), baseline) << i;
  }
  const Router::Stats stats = router.stats();
  EXPECT_GE(stats.reads_routed, 7u);
  EXPECT_EQ(stats.no_replica, 0u);
  router.Stop();

  // The trace the router wrote is parseable and PRAM-consistent.
  std::vector<TraceOp> ops;
  ASSERT_TRUE(ParseTraceFile(options.trace_log_path, &ops, &error)) << error;
  EXPECT_EQ(ops.size(), 7u);
  EXPECT_FALSE(CheckPramConsistency(ops).has_value());
}

TEST_F(ClusterFixture, RouterEchoesTheCallersRequestId) {
  StartCluster();
  RegisterGraph(replicas_["a"]->port(), "g");
  std::vector<ClusterMember> members;
  for (const std::string& id : ids_) {
    members.push_back(ClusterMember{id, "127.0.0.1", replicas_[id]->port()});
  }
  RouterOptions options;
  options.replication_factor = kReplication;
  options.health_interval_ms = 0;
  Router router(members, options);
  std::string error;
  ASSERT_TRUE(router.Start(&error)) << error;
  const auto response = Post(router.port(), "/v1/decompose", kDecomposeBody,
                             {{"X-Request-Id", "00000000deadbeef"}});
  EXPECT_EQ(response.status, 200) << response.body;
  const auto echoed = response.headers.find("x-request-id");
  ASSERT_NE(echoed, response.headers.end());
  EXPECT_EQ(echoed->second, "00000000deadbeef");
  EXPECT_EQ(UintField(response.body, "graph_epoch"), 1u);
  router.Stop();
}

TEST_F(ClusterFixture, CrashedFollowerRejoinsFromItsOwnDataDir) {
  StartCluster(/*proxy=*/true, /*durable=*/true);
  RegisterGraph(Owner("g").port(), "g");
  const auto sealed =
      Post(Owner("g").port(), "/v1/graphs/g/edges",
           "{\"edges\":[{\"op\":\"insert\",\"u\":7,\"v\":9}],\"seal\":true}");
  ASSERT_EQ(sealed.status, 200) << sealed.body;

  // "Crash" the follower, then write a sealed batch it never sees.
  const std::string follower = Holders("g")[1];
  replicas_[follower]->Stop();
  const auto missed =
      Post(Owner("g").port(), "/v1/graphs/g/edges",
           "{\"edges\":[{\"op\":\"insert\",\"u\":8,\"v\":2}],\"seal\":true}");
  ASSERT_EQ(missed.status, 200) << missed.body;
  EXPECT_EQ(UintField(missed.body, "epoch"), 3u);

  // Rejoin from its own journal: recovers to the epoch it saw (2).
  replicas_[follower] = std::make_unique<TestReplica>();
  replicas_[follower]->Start(follower, ids_, kReplication, /*proxy=*/true,
                             dir_.path() + "/data-" + follower);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  ConnectAll();
  const auto info = Get(replicas_[follower]->port(), "/v1/cluster/info");
  EXPECT_NE(info.body.find("\"epoch\":2"), std::string::npos) << info.body;

  // The next replicated batch 409s on the diverged chain and triggers a
  // full-state sync; after it the follower is bit-identical to the owner.
  const auto converge =
      Post(Owner("g").port(), "/v1/graphs/g/edges",
           "{\"edges\":[{\"op\":\"insert\",\"u\":9,\"v\":5}],\"seal\":true}");
  ASSERT_EQ(converge.status, 200) << converge.body;
  EXPECT_EQ(UintField(converge.body, "epoch"), 4u);
  EXPECT_GE(Owner("g").node->stats().chain_syncs, 1u);

  const auto from_owner =
      Post(Owner("g").port(), "/v1/decompose", kDecomposeBody);
  const auto from_follower =
      Post(replicas_[follower]->port(), "/v1/decompose", kDecomposeBody);
  ASSERT_EQ(from_owner.status, 200) << from_owner.body;
  ASSERT_EQ(from_follower.status, 200) << from_follower.body;
  EXPECT_EQ(UintField(from_follower.body, "graph_epoch"), 4u);
  EXPECT_EQ(Numbers(from_owner.body), Numbers(from_follower.body));
}

TEST_F(ClusterFixture, RouteEndpointAgreesAcrossAllMembers) {
  StartCluster();
  std::string expected;
  for (const std::string& id : ids_) {
    const auto response =
        Get(replicas_[id]->port(), "/v1/cluster/route?graph=g");
    ASSERT_EQ(response.status, 200);
    const auto json = util::JsonValue::Parse(response.body);
    ASSERT_TRUE(json.has_value());
    std::string owner;
    ASSERT_TRUE(json->GetString("owner", &owner));
    if (expected.empty()) expected = owner;
    EXPECT_EQ(owner, expected) << id;
  }
  EXPECT_EQ(expected, HashRing(ids_).Owner("g"));
}

}  // namespace
}  // namespace receipt::cluster
