// Quickstart: build a small bipartite graph, run RECEIPT, inspect tip
// numbers and retrieve the k-tip hierarchy.
//
//   $ ./quickstart

#include <cstdio>

#include "receipt/receipt_lib.h"

int main() {
  using namespace receipt;

  // 1. Build a graph. U vertices are one entity class (say, users), V the
  //    other (say, products); edges are interactions. Ids are 0-based and
  //    side-local.
  const BipartiteGraph graph = SmallExampleGraph();
  std::printf("graph: |U|=%u |V|=%u |E|=%llu, %llu butterflies\n\n",
              graph.num_u(), graph.num_v(),
              static_cast<unsigned long long>(graph.num_edges()),
              static_cast<unsigned long long>(TotalButterflies(graph, 2)));

  // 2. Decompose. TipOptions picks the side to peel, the thread count and
  //    the number of independent subsets P (the paper uses P=150 for
  //    multi-million-edge graphs; small graphs need far less).
  TipOptions options;
  options.side = Side::kU;
  options.num_threads = 2;
  options.num_partitions = 4;
  const TipResult result = ReceiptDecompose(graph, options);

  std::printf("tip numbers (theta_u = strongest butterfly-dense subgraph "
              "containing u):\n");
  for (VertexId u = 0; u < graph.num_u(); ++u) {
    std::printf("  u%-2u theta=%llu\n", u,
                static_cast<unsigned long long>(result.tip_numbers[u]));
  }

  // 3. Retrieve hierarchy levels. A k-tip is a maximal butterfly-connected
  //    subgraph whose U vertices all sit in >= k butterflies.
  for (const Count k : {Count{1}, Count{5}, Count{18}}) {
    const auto tips = ExtractKTips(graph, Side::kU, result.tip_numbers, k);
    std::printf("\n%llu-tips (%zu):", static_cast<unsigned long long>(k),
                tips.size());
    for (const KTip& tip : tips) {
      std::printf(" {");
      for (size_t i = 0; i < tip.vertices.size(); ++i) {
        std::printf("%su%u", i ? "," : "", tip.vertices[i]);
      }
      std::printf("}");
    }
  }

  // 4. Instrumentation: wedges traversed, synchronization rounds, phase
  //    times — the quantities the paper evaluates.
  std::printf("\n\n%s\n", result.stats.ToString().c_str());
  return 0;
}
