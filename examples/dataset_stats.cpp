// Dataset inspector: loads a bipartite graph from a KONECT-format edge list
// (or a named built-in analogue) and prints the Table-2-style statistics
// plus a tip decomposition summary of both sides.
//
//   $ ./dataset_stats tr            # built-in analogue
//   $ ./dataset_stats out.wiki.konect   # real KONECT file

#include <cstdio>
#include <cstring>
#include <string>

#include "receipt/receipt_lib.h"

namespace {

void SummarizeSide(const receipt::BipartiteGraph& graph, receipt::Side side) {
  using namespace receipt;
  TipOptions options;
  options.side = side;
  options.num_threads = 4;
  options.num_partitions = 20;
  const TipResult result = ReceiptDecompose(graph, options);
  const auto histogram = TipHistogram(result.tip_numbers);

  std::printf("  side %s: theta_max=%llu, distinct tip values=%zu, "
              "wedges traversed=%llu, sync rounds=%llu, subsets=%llu\n",
              SideName(side),
              static_cast<unsigned long long>(result.MaxTipNumber()),
              histogram.size(),
              static_cast<unsigned long long>(result.stats.TotalWedges()),
              static_cast<unsigned long long>(result.stats.sync_rounds),
              static_cast<unsigned long long>(result.stats.num_subsets));

  // Cumulative distribution at a few round thresholds (Fig. 4 style).
  const double total = static_cast<double>(result.tip_numbers.size());
  std::printf("    %% of vertices with theta <= {0, 10, 1000}: ");
  for (const Count threshold : {Count{0}, Count{10}, Count{1000}}) {
    uint64_t below = 0;
    for (const auto& [value, count] : histogram) {
      if (value <= threshold) below += count;
    }
    std::printf("%.1f%% ", 100.0 * static_cast<double>(below) / total);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace receipt;
  const std::string source = argc > 1 ? argv[1] : "it";

  BipartiteGraph graph;
  bool is_builtin = false;
  for (const std::string& name : PaperAnalogueNames()) {
    if (source == name) {
      graph = MakePaperAnalogue(name);
      is_builtin = true;
      std::printf("built-in analogue '%s': %s\n", name.c_str(),
                  PaperAnalogueDescription(name).c_str());
      break;
    }
  }
  if (!is_builtin) {
    std::string error;
    auto loaded = LoadKonect(source, &error);
    if (!loaded) {
      std::fprintf(stderr, "failed to load '%s': %s\n", source.c_str(),
                   error.c_str());
      std::fprintf(stderr, "usage: %s <konect-file | it|de|or|lj|en|tr>\n",
                   argv[0]);
      return 1;
    }
    graph = std::move(*loaded);
    std::printf("loaded %s\n", source.c_str());
  }

  std::printf(
      "|U|=%u |V|=%u |E|=%llu  dU=%.1f dV=%.1f\n"
      "butterflies=%llu  wedgesU=%llu wedgesV=%llu  counting bound=%llu\n",
      graph.num_u(), graph.num_v(),
      static_cast<unsigned long long>(graph.num_edges()),
      graph.AverageDegree(Side::kU), graph.AverageDegree(Side::kV),
      static_cast<unsigned long long>(TotalButterflies(graph, 4)),
      static_cast<unsigned long long>(graph.TotalWedges(Side::kU)),
      static_cast<unsigned long long>(graph.TotalWedges(Side::kV)),
      static_cast<unsigned long long>(graph.CountingCostBound()));

  std::printf("\ntip decomposition summary:\n");
  SummarizeSide(graph, Side::kU);
  SummarizeSide(graph, Side::kV);
  return 0;
}
