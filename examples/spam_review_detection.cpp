// Spam-reviewer detection (§1): collusive spam reviewers rate the same
// selected products, forming near-bicliques in the user×product graph. Tip
// decomposition surfaces them: colluders share many butterflies, so their
// tip numbers tower over organic users.
//
//   $ ./spam_review_detection

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "receipt/receipt_lib.h"

namespace {

constexpr receipt::VertexId kNumUsers = 3000;
constexpr receipt::VertexId kNumProducts = 1200;
constexpr receipt::VertexId kNumSpammers = 25;
constexpr receipt::VertexId kNumTargetProducts = 18;

}  // namespace

int main() {
  using namespace receipt;

  // Synthetic marketplace: one collusive block (25 spammers × 18 boosted
  // products, ~95% rating density) buried in 9000 organic ratings.
  const std::vector<CommunitySpec> rings = {{.num_users = kNumSpammers,
                                             .num_items = kNumTargetProducts,
                                             .density = 0.95}};
  const BipartiteGraph ratings =
      AffiliationGraph(kNumUsers, kNumProducts, rings,
                       /*background_edges=*/9000, /*seed=*/4242);
  std::printf(
      "marketplace: %u users x %u products, %llu ratings "
      "(%u colluders planted on %u products)\n\n",
      ratings.num_u(), ratings.num_v(),
      static_cast<unsigned long long>(ratings.num_edges()), kNumSpammers,
      kNumTargetProducts);

  // Decompose the user side.
  TipOptions options;
  options.side = Side::kU;
  options.num_threads = 4;
  options.num_partitions = 20;
  const TipResult result = ReceiptDecompose(ratings, options);

  // Rank users by tip number.
  std::vector<VertexId> ranked(ratings.num_u());
  std::iota(ranked.begin(), ranked.end(), 0);
  std::sort(ranked.begin(), ranked.end(), [&](VertexId a, VertexId b) {
    return result.tip_numbers[a] > result.tip_numbers[b];
  });

  std::printf("top-%u users by tip number:\n", kNumSpammers + 5);
  int true_positives = 0;
  for (VertexId i = 0; i < kNumSpammers + 5; ++i) {
    const VertexId u = ranked[i];
    const bool planted = u < kNumSpammers;  // colluders got ids 0..24
    if (i < kNumSpammers && planted) ++true_positives;
    std::printf("  #%-3u user %-5u theta=%-8llu %s\n", i + 1, u,
                static_cast<unsigned long long>(result.tip_numbers[u]),
                planted ? "<-- planted colluder" : "");
  }
  std::printf(
      "\nprecision@%u = %.1f%% (the dense ring dominates the top of the "
      "tip hierarchy)\n",
      kNumSpammers, 100.0 * true_positives / kNumSpammers);

  // The ring is also recoverable as a single k-tip at a high threshold:
  // pick k at the planted block's scale.
  const Count k = result.tip_numbers[ranked[kNumSpammers - 1]];
  const auto tips = ExtractKTips(ratings, Side::kU, result.tip_numbers, k);
  std::printf("\n%llu-tips found: %zu; largest has %zu members\n",
              static_cast<unsigned long long>(k), tips.size(),
              tips.empty() ? 0 : tips[0].vertices.size());
  return 0;
}
