// Link prediction on a bipartite user×item graph (§1: dense k-tips group
// vertices with "connections to common and similar sets of neighbors").
// For a query user we rank candidate partners by shared butterflies — the
// same quantity tip decomposition peels on — restricted to the strongest
// tip level both belong to, then recommend the partners' items.
//
//   $ ./link_prediction

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "receipt/receipt_lib.h"

int main() {
  using namespace receipt;

  // Synthetic taste communities: four genres, users rate mostly inside
  // their genre. One held-out user (id 0) has rated only half of their
  // genre's items; we predict the rest.
  const std::vector<CommunitySpec> genres = {
      {.num_users = 40, .num_items = 25, .density = 0.5},
      {.num_users = 40, .num_items = 25, .density = 0.5},
      {.num_users = 40, .num_items = 25, .density = 0.5},
      {.num_users = 40, .num_items = 25, .density = 0.5},
  };
  const BipartiteGraph ratings =
      AffiliationGraph(200, 120, genres, /*background_edges=*/700,
                       /*seed=*/31337);
  const VertexId query = 0;  // member of genre 0 (users 0..39)
  std::printf("ratings graph: %u users x %u items, %llu edges; query user "
              "%u (genre 0)\n\n",
              ratings.num_u(), ratings.num_v(),
              static_cast<unsigned long long>(ratings.num_edges()), query);

  // 1. Tip-decompose the user side: θ tells how deep each user sits in a
  //    butterfly-dense (taste-coherent) region.
  TipOptions options;
  options.num_threads = 2;
  options.num_partitions = 8;
  const TipResult tips = ReceiptDecompose(ratings, options);

  // 2. Restrict to the strongest tip level containing the query user and
  //    rank its members by butterflies shared with the query.
  const Count level = tips.tip_numbers[query];
  const auto k_tips = ExtractKTips(ratings, Side::kU, tips.tip_numbers,
                                   level);
  const KTip* home = nullptr;
  for (const KTip& tip : k_tips) {
    if (std::binary_search(tip.vertices.begin(), tip.vertices.end(),
                           query)) {
      home = &tip;
      break;
    }
  }
  if (home == nullptr) {
    std::printf("query user participates in no butterflies; nothing to "
                "recommend\n");
    return 0;
  }
  std::printf("query sits in a %llu-tip with %zu users\n",
              static_cast<unsigned long long>(level),
              home->vertices.size());

  std::vector<std::pair<Count, VertexId>> partners;
  for (const VertexId u : home->vertices) {
    if (u == query) continue;
    const Count shared = SharedButterflies(ratings, query, u);
    if (shared > 0) partners.emplace_back(shared, u);
  }
  std::sort(partners.rbegin(), partners.rend());

  // 3. Vote items through the top partners, skipping already-rated ones.
  std::vector<uint32_t> votes(ratings.num_v(), 0);
  const auto rated = ratings.Neighbors(query);
  const size_t top_k = std::min<size_t>(10, partners.size());
  for (size_t i = 0; i < top_k; ++i) {
    for (const VertexId gv : ratings.Neighbors(partners[i].second)) {
      if (!std::binary_search(rated.begin(), rated.end(), gv)) {
        ++votes[ratings.Local(gv)];
      }
    }
  }
  std::vector<VertexId> items(ratings.num_v());
  std::iota(items.begin(), items.end(), 0);
  std::sort(items.begin(), items.end(), [&votes](VertexId a, VertexId b) {
    return votes[a] > votes[b];
  });

  std::printf("\ntop partner users (shared butterflies with query):\n");
  for (size_t i = 0; i < std::min<size_t>(5, partners.size()); ++i) {
    std::printf("  user %-4u shared=%llu\n", partners[i].second,
                static_cast<unsigned long long>(partners[i].first));
  }
  std::printf("\ntop predicted items (genre-0 items are ids 0..24):\n");
  int genre_hits = 0;
  for (int i = 0; i < 8; ++i) {
    const bool in_genre = items[i] < 25;
    genre_hits += in_genre;
    std::printf("  item %-4u votes=%u %s\n", items[i], votes[items[i]],
                in_genre ? "<-- query's genre" : "");
  }
  std::printf("\n%d of 8 predictions fall in the query's own genre\n",
              genre_hits);
  return 0;
}
