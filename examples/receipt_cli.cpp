// receipt_cli — command-line driver for the library: generate datasets,
// inspect statistics, run any decomposition algorithm and export results.
//
//   receipt_cli generate --type chunglu --nu 10000 --nv 5000 --edges 50000 \
//                        --alpha-u 0.5 --alpha-v 0.8 --seed 1 --output g.konect
//   receipt_cli stats    --dataset tr
//   receipt_cli decompose --input g.konect --algo receipt --side U \
//                        --threads 8 --partitions 150 --output tips.txt
//   receipt_cli wing     --dataset it --parallel --partitions 8
//   receipt_cli serve    --graphs g1=a.konect,g2=b.bin --workers 2 \
//                        --clients 4 --requests 24 --threads 2
//   receipt_cli serve    --http-port 8080 --datasets it,de --workers 2
//   receipt_cli update   --port 8080 --graph g1 --batch updates.txt --seal
//
// With --http-port, serve exposes the service as HTTP/JSON endpoints
// (POST /v1/decompose, GET/POST /v1/graphs, POST /v1/graphs/{name}/edges,
// /healthz, /statz) and runs until SIGINT/SIGTERM, then drains gracefully.
// `update` posts an edge-update batch (lines "+ u v" / "- u v", from a file
// or stdin) to a running server's live-update endpoint.
//
// Exit code 0 on success, 1 on usage errors, 2 on IO failures.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <cctype>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sstream>

#include "cluster/node.h"
#include "cluster/router.h"
#include "receipt/receipt_lib.h"
#include "server/decomposition_http.h"
#include "server/http_server.h"
#include "util/json.h"
#include "util/timer.h"

namespace {

using namespace receipt;

/// Minimal --flag value parser: flags() returns "" for missing keys;
/// boolean switches store "1". Accepts both `--flag value` and
/// `--flag=value` spellings.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (const size_t eq = key.find('='); eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
        continue;
      }
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "1";
      }
    }
  }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

/// Validated on/off switch: absent → `fallback`; bare flag / on / 1 / true
/// → true; off / 0 / false → false; anything else is a usage error.
bool ParseOnOff(const Args& args, const char* flag, bool fallback,
                bool* out) {
  if (!args.Has(flag)) {
    *out = fallback;
    return true;
  }
  const std::string value = args.Get(flag);
  if (value == "1" || value == "on" || value == "true") {
    *out = true;
    return true;
  }
  if (value == "0" || value == "off" || value == "false") {
    *out = false;
    return true;
  }
  std::fprintf(stderr, "--%s takes on or off, got '%s'\n", flag,
               value.c_str());
  return false;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: receipt_cli <command> [flags]\n"
      "commands:\n"
      "  generate  --type chunglu|random|complete --nu N --nv N --edges M\n"
      "            [--alpha-u A --alpha-v A] [--seed S] --output FILE\n"
      "  stats     --input FILE | --dataset it|de|or|lj|en|tr\n"
      "            [--approx-samples N]\n"
      "  decompose --input FILE | --dataset NAME  [--algo receipt|bup|parb]\n"
      "            [--side U|V] [--threads T] [--partitions P]\n"
      "            [--no-huc] [--no-dgm] [--pin-numa[=off]]\n"
      "            [--placement-nodes N] [--output FILE]\n"
      "  wing      --input FILE | --dataset NAME  [--parallel]\n"
      "            [--threads T] [--partitions P] [--output FILE]\n"
      "  serve     --graphs NAME=FILE[,NAME=FILE...] | --datasets it,de,...\n"
      "            [--workers W] [--clients C] [--requests N] [--threads T]\n"
      "            [--partitions P] [--cache-mb MB] [--queue-capacity N]\n"
      "            [--pin-numa[=off]] [--http-port PORT] [--http-threads N]\n"
      "            [--max-pending-edges N] [--max-staleness-ms MS]\n"
      "            [--dirty-fraction-limit F] [--live-track tip-U:150,wing:8]\n"
      "            [--data-dir DIR] [--fsync always|batch|off]\n"
      "            [--journal-segment-mb MB] [--snapshot-on-seal[=off]]\n"
      "            [--cluster-id ID --cluster-members a=H:P,b=H:P,...]\n"
      "            [--replication R] [--cluster-proxy[=off]]\n"
      "            [--peer-timeout-ms MS]\n"
      "            (--http-port serves HTTP/JSON until SIGINT/SIGTERM;\n"
      "             port 0 binds an ephemeral port, printed on startup;\n"
      "             graphs may also be registered later via POST /v1/graphs;\n"
      "             --data-dir journals every change and recovers on start;\n"
      "             --cluster-id joins the replicated tier as that member)\n"
      "  router    --members a=H:P,b=H:P,... [--http-port PORT]\n"
      "            [--http-threads N] [--replication R] [--trace-log FILE]\n"
      "            [--health-interval-ms MS] [--peer-timeout-ms MS]\n"
      "            (front-end for a replica set: spreads reads over healthy\n"
      "             holders, steers writes to the shard owner, fails over,\n"
      "             and appends one JSONL client-trace record per acked op\n"
      "             for tools/consistency_check)\n"
      "  update    --graph NAME --batch FILE|-  [--host H] [--port P]\n"
      "            [--seal] [--threads T] [--track tip-U:150,wing:8]\n"
      "            [--retries N] [--retry-base-ms MS]\n"
      "            (batch lines: '+ u v' inserts, '- u v' deletes; posts to\n"
      "             a running serve --http-port instance; retries 429/503\n"
      "             and transport failures with jittered backoff)\n");
  return 1;
}

bool LoadGraph(const Args& args, BipartiteGraph* graph) {
  if (args.Has("dataset")) {
    const std::string name = args.Get("dataset");
    for (const std::string& known : PaperAnalogueNames()) {
      if (name == known) {
        *graph = MakePaperAnalogue(name);
        return true;
      }
    }
    std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
    return false;
  }
  const std::string path = args.Get("input");
  if (path.empty()) {
    std::fprintf(stderr, "need --input FILE or --dataset NAME\n");
    return false;
  }
  std::string error;
  auto loaded = LoadGraphFile(path, &error);
  if (!loaded) {
    std::fprintf(stderr, "failed to load '%s': %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  *graph = std::move(*loaded);
  return true;
}

int CmdGenerate(const Args& args) {
  const std::string type = args.Get("type", "chunglu");
  const VertexId nu = static_cast<VertexId>(args.GetInt("nu", 1000));
  const VertexId nv = static_cast<VertexId>(args.GetInt("nv", 1000));
  const uint64_t edges = static_cast<uint64_t>(args.GetInt("edges", 5000));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));

  BipartiteGraph graph;
  if (type == "chunglu") {
    graph = ChungLuBipartite(nu, nv, edges, args.GetDouble("alpha-u", 0.5),
                             args.GetDouble("alpha-v", 0.5), seed);
  } else if (type == "random") {
    graph = RandomBipartite(nu, nv, edges, seed);
  } else if (type == "complete") {
    graph = CompleteBipartite(nu, nv);
  } else {
    std::fprintf(stderr, "unknown --type '%s'\n", type.c_str());
    return 1;
  }

  const std::string output = args.Get("output");
  if (output.empty()) {
    std::fprintf(stderr, "need --output FILE\n");
    return 1;
  }
  const bool ok =
      output.size() > 4 && output.substr(output.size() - 4) == ".bin"
          ? SaveBinary(graph, output)
          : SaveKonect(graph, output);
  if (!ok) {
    std::fprintf(stderr, "failed to write '%s'\n", output.c_str());
    return 2;
  }
  std::printf("wrote %s: |U|=%u |V|=%u |E|=%llu\n", output.c_str(),
              graph.num_u(), graph.num_v(),
              static_cast<unsigned long long>(graph.num_edges()));
  return 0;
}

int CmdStats(const Args& args) {
  BipartiteGraph graph;
  if (!LoadGraph(args, &graph)) return 2;
  std::printf("|U|=%u |V|=%u |E|=%llu dU=%.2f dV=%.2f\n", graph.num_u(),
              graph.num_v(),
              static_cast<unsigned long long>(graph.num_edges()),
              graph.AverageDegree(Side::kU), graph.AverageDegree(Side::kV));
  std::printf("wedgesU=%llu wedgesV=%llu counting_bound=%llu\n",
              static_cast<unsigned long long>(graph.TotalWedges(Side::kU)),
              static_cast<unsigned long long>(graph.TotalWedges(Side::kV)),
              static_cast<unsigned long long>(graph.CountingCostBound()));
  const int64_t samples = args.GetInt("approx-samples", 0);
  if (samples > 0) {
    const ApproxCountResult approx = ApproxTotalButterflies(
        graph, static_cast<uint64_t>(samples), /*seed=*/17);
    std::printf("approx butterflies=%.0f (rel. std. err %.3f, %llu "
                "samples)\n",
                approx.estimate, approx.relative_std_error,
                static_cast<unsigned long long>(approx.samples));
  } else {
    std::printf("butterflies=%llu\n",
                static_cast<unsigned long long>(TotalButterflies(graph, 4)));
  }
  return 0;
}

bool WriteCounts(const std::string& path, const std::vector<Count>& values) {
  std::ofstream out(path);
  for (size_t i = 0; i < values.size(); ++i) {
    out << i << " " << values[i] << "\n";
  }
  return static_cast<bool>(out);
}

int CmdDecompose(const Args& args) {
  BipartiteGraph graph;
  if (!LoadGraph(args, &graph)) return 2;

  TipOptions options;
  options.side = args.Get("side", "U") == "V" ? Side::kV : Side::kU;
  options.num_threads = static_cast<int>(args.GetInt("threads", 4));
  options.num_partitions =
      static_cast<int>(args.GetInt("partitions", 150));
  options.use_huc = !args.Has("no-huc");
  options.use_dgm = !args.Has("no-dgm");
  if (!ParseOnOff(args, "pin-numa", options.pin_numa, &options.pin_numa)) {
    return 1;
  }
  const int64_t placement_nodes = args.GetInt("placement-nodes", 0);
  if (placement_nodes < 0 || placement_nodes > 1024) {
    std::fprintf(stderr, "--placement-nodes must be in [0, 1024], got %lld\n",
                 static_cast<long long>(placement_nodes));
    return 1;
  }
  options.placement_nodes = static_cast<int>(placement_nodes);

  const std::string algo = args.Get("algo", "receipt");
  TipResult result;
  if (algo == "receipt") {
    result = ReceiptDecompose(graph, options);
  } else if (algo == "bup") {
    result = BupDecompose(graph, options);
  } else if (algo == "parb") {
    result = ParbDecompose(graph, options);
  } else {
    std::fprintf(stderr, "unknown --algo '%s'\n", algo.c_str());
    return 1;
  }

  std::printf("%s on side %s: theta_max=%llu\n%s\n", algo.c_str(),
              SideName(options.side),
              static_cast<unsigned long long>(result.MaxTipNumber()),
              result.stats.ToString().c_str());
  const std::string output = args.Get("output");
  if (!output.empty()) {
    if (!WriteCounts(output, result.tip_numbers)) {
      std::fprintf(stderr, "failed to write '%s'\n", output.c_str());
      return 2;
    }
    std::printf("tip numbers written to %s\n", output.c_str());
  }
  return 0;
}

int CmdWing(const Args& args) {
  BipartiteGraph graph;
  if (!LoadGraph(args, &graph)) return 2;
  const int threads = static_cast<int>(args.GetInt("threads", 4));
  WingResult result;
  if (args.Has("parallel")) {
    ReceiptWingOptions options;
    options.num_threads = threads;
    options.num_partitions =
        static_cast<int>(args.GetInt("partitions", 8));
    result = ReceiptWingDecompose(graph, options);
  } else {
    result = WingDecompose(graph, threads);
  }
  std::printf("wing decomposition: max_wing=%llu\n%s\n",
              static_cast<unsigned long long>(result.MaxWingNumber()),
              result.stats.ToString().c_str());
  const std::string output = args.Get("output");
  if (!output.empty()) {
    if (!WriteCounts(output, result.wing_numbers)) {
      std::fprintf(stderr, "failed to write '%s'\n", output.c_str());
      return 2;
    }
    std::printf("wing numbers written to %s\n", output.c_str());
  }
  return 0;
}

std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> items;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) items.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

/// Parses "tip-U:150,wing:8" into live-tracking configs (partitions
/// optional; RECEIPT defaults apply when omitted).
bool ParseTrackSpecs(const std::string& list,
                     std::vector<service::LiveConfig>* out) {
  for (const std::string& spec : SplitCommaList(list)) {
    service::LiveConfig config;
    std::string kind = spec;
    if (const size_t colon = spec.find(':'); colon != std::string::npos) {
      kind = spec.substr(0, colon);
      const std::string partitions = spec.substr(colon + 1);
      if (partitions.empty() ||
          partitions.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "bad partition count in track spec '%s'\n",
                     spec.c_str());
        return false;
      }
      config.partitions =
          static_cast<uint32_t>(std::atoll(partitions.c_str()));
    }
    if (!service::RequestKindFromName(kind, &config.kind)) {
      std::fprintf(stderr,
                   "track spec '%s': kind must be tip-U, tip-V or wing\n",
                   spec.c_str());
      return false;
    }
    out->push_back(config);
  }
  return true;
}

/// Reads an edge-update batch: one update per line, "+ u v" inserts,
/// "- u v" deletes, bare "u v" inserts; '#' starts a comment.
bool ReadUpdateBatch(std::istream& in, std::vector<service::EdgeUpdate>* out) {
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (const size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::string first;
    if (!(fields >> first)) continue;  // blank line
    service::EdgeUpdate update;
    long long u = -1;
    long long v = -1;
    if (first == "+" || first == "-") {
      update.insert = first == "+";
      if (!(fields >> u >> v)) u = -1;
    } else {
      update.insert = true;
      u = std::atoll(first.c_str());
      if (first.find_first_not_of("0123456789") != std::string::npos ||
          !(fields >> v)) {
        u = -1;
      }
    }
    std::string extra;
    if (u < 0 || v < 0 || u > UINT32_MAX || v > UINT32_MAX ||
        (fields >> extra)) {
      std::fprintf(stderr, "batch line %zu: expected '[+|-] u v', got '%s'\n",
                   line_number, line.c_str());
      return false;
    }
    update.u = static_cast<VertexId>(u);
    update.v = static_cast<VertexId>(v);
    out->push_back(update);
  }
  return true;
}

std::string ToLowerCopy(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

/// Minimal blocking HTTP/1.1 POST over a fresh IPv4 socket (the CLI's only
/// client-side HTTP need — one request, Connection: close). Returns the
/// HTTP status, or 0 with *error set on transport failure. When the server
/// sent a Retry-After header, `*retry_after_s` gets its value in seconds.
int HttpPostJson(const std::string& host, uint16_t port,
                 const std::string& path, const std::string& body,
                 std::string* response_body, int* retry_after_s,
                 std::string* error) {
  *retry_after_s = 0;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = "socket() failed";
    return 0;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "--host must be an IPv4 address, got '" + host + "'";
    ::close(fd);
    return 0;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "cannot connect to " + host + ":" + std::to_string(port) +
             " (is `receipt_cli serve --http-port` running?)";
    ::close(fd);
    return 0;
  }
  std::string request = "POST " + path + " HTTP/1.1\r\n";
  request += "Host: " + host + "\r\n";
  request += "Content-Type: application/json\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += body;
  size_t sent = 0;
  while (sent < request.size()) {
    // MSG_NOSIGNAL: a server that died mid-request must surface as EPIPE,
    // not kill the CLI with SIGPIPE.
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      *error = "send() failed mid-request";
      ::close(fd);
      return 0;
    }
    sent += static_cast<size_t>(n);
  }
  std::string reply;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = "recv() failed reading the response";
      ::close(fd);
      return 0;
    }
    if (n == 0) break;
    reply.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = reply.find("\r\n\r\n");
  if (reply.compare(0, 9, "HTTP/1.1 ") != 0 ||
      header_end == std::string::npos) {
    *error = "malformed HTTP response";
    return 0;
  }
  // Scan header lines for Retry-After (the server's backoff hint on
  // 429/503); header names are case-insensitive.
  size_t cursor = reply.find("\r\n") + 2;
  while (cursor < header_end) {
    const size_t eol = reply.find("\r\n", cursor);
    std::string line = reply.substr(cursor, eol - cursor);
    cursor = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = ToLowerCopy(line.substr(0, colon));
    if (name != "retry-after") continue;
    size_t value_start = colon + 1;
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    *retry_after_s = std::atoi(line.c_str() + value_start);
  }
  *response_body = reply.substr(header_end + 4);
  return std::atoi(reply.c_str() + 9);
}

/// Posts with a retry budget: transport failures and 429/503 responses are
/// retried with jittered exponential backoff (base * 2^attempt, uniformly
/// jittered into [half, full]), and a server-sent Retry-After floor is
/// honored. Any other status returns immediately.
int HttpPostJsonWithRetry(const std::string& host, uint16_t port,
                          const std::string& path, const std::string& body,
                          int retries, int retry_base_ms,
                          std::string* response_body, std::string* error) {
  std::mt19937 rng(std::random_device{}());
  int status = 0;
  for (int attempt = 0; ; ++attempt) {
    int retry_after_s = 0;
    error->clear();
    status = HttpPostJson(host, port, path, body, response_body,
                          &retry_after_s, error);
    const bool retryable = status == 0 || status == 429 || status == 503;
    if (!retryable || attempt >= retries) return status;
    const double full_ms = static_cast<double>(retry_base_ms) *
                           static_cast<double>(1u << std::min(attempt, 20));
    std::uniform_real_distribution<double> jitter(full_ms / 2.0, full_ms);
    int64_t sleep_ms = static_cast<int64_t>(jitter(rng));
    sleep_ms = std::max<int64_t>(sleep_ms, int64_t{retry_after_s} * 1000);
    std::fprintf(stderr,
                 "attempt %d/%d: %s; retrying in %lld ms\n", attempt + 1,
                 retries + 1,
                 status == 0 ? error->c_str()
                             : ("HTTP " + std::to_string(status)).c_str(),
                 static_cast<long long>(sleep_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

// update: post an edge batch to a running server's live-update endpoint.
int CmdUpdate(const Args& args) {
  const std::string graph = args.Get("graph");
  if (graph.empty()) {
    std::fprintf(stderr, "need --graph NAME\n");
    return 1;
  }
  const std::string batch_path = args.Get("batch");
  if (batch_path.empty()) {
    std::fprintf(stderr, "need --batch FILE (or - for stdin)\n");
    return 1;
  }
  std::vector<service::EdgeUpdate> updates;
  if (batch_path == "-") {
    if (!ReadUpdateBatch(std::cin, &updates)) return 1;
  } else {
    std::ifstream in(batch_path);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", batch_path.c_str());
      return 2;
    }
    if (!ReadUpdateBatch(in, &updates)) return 1;
  }
  std::vector<service::LiveConfig> track;
  if (!ParseTrackSpecs(args.Get("track"), &track)) return 1;

  util::JsonWriter writer;
  writer.BeginObject().Key("edges").BeginArray();
  for (const service::EdgeUpdate& update : updates) {
    writer.BeginObject()
        .Key("op").String(update.insert ? "insert" : "delete")
        .Key("u").Uint(update.u)
        .Key("v").Uint(update.v)
        .EndObject();
  }
  writer.EndArray();
  if (args.Has("seal")) writer.Key("seal").Bool(true);
  if (const int64_t threads = args.GetInt("threads", 0); threads > 0) {
    writer.Key("threads").Int(threads);
  }
  if (!track.empty()) {
    writer.Key("track").BeginArray();
    for (const service::LiveConfig& config : track) {
      writer.BeginObject()
          .Key("kind").String(service::RequestKindName(config.kind))
          .Key("partitions").Uint(config.partitions)
          .EndObject();
    }
    writer.EndArray();
  }
  writer.EndObject();

  const std::string host = args.Get("host", "127.0.0.1");
  const int64_t port = args.GetInt("port", 8080);
  if (port < 1 || port > 65535) {
    std::fprintf(stderr, "--port must be in [1, 65535]\n");
    return 1;
  }
  const int64_t retries = args.GetInt("retries", 3);
  const int64_t retry_base_ms = args.GetInt("retry-base-ms", 100);
  if (retries < 0 || retries > 100 || retry_base_ms < 1 ||
      retry_base_ms > 60000) {
    std::fprintf(stderr,
                 "--retries must be in [0, 100] and --retry-base-ms in "
                 "[1, 60000]\n");
    return 1;
  }
  std::string response_body;
  std::string error;
  const int status = HttpPostJsonWithRetry(
      host, static_cast<uint16_t>(port), "/v1/graphs/" + graph + "/edges",
      writer.Take(), static_cast<int>(retries),
      static_cast<int>(retry_base_ms), &response_body, &error);
  if (status == 0) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  std::printf("%s\n", response_body.c_str());
  if (status != 200) {
    std::fprintf(stderr, "server answered HTTP %d\n", status);
    return 2;
  }
  return 0;
}

volatile std::sig_atomic_t g_stop_requested = 0;

void OnStopSignal(int) { g_stop_requested = 1; }

// router: thin front-end over a replica set (see cluster::Router). Runs
// until SIGINT/SIGTERM, then prints routing stats.
int CmdRouter(const Args& args) {
  std::vector<cluster::ClusterMember> members;
  std::string member_error;
  if (!cluster::ParseClusterMembers(args.Get("members"), &members,
                                    &member_error)) {
    std::fprintf(stderr, "--members: %s\n", member_error.c_str());
    return 1;
  }
  if (members.empty()) {
    std::fprintf(stderr, "need --members a=HOST:PORT,b=HOST:PORT,...\n");
    return 1;
  }
  const int64_t port = args.GetInt("http-port", 0);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "--http-port must be in [0, 65535], got %lld\n",
                 static_cast<long long>(port));
    return 1;
  }
  cluster::RouterOptions options;
  options.http.port = static_cast<uint16_t>(port);
  options.http.num_threads = static_cast<int>(args.GetInt("http-threads", 4));
  const int64_t replication = args.GetInt("replication", 2);
  if (replication < 1 || replication > static_cast<int64_t>(members.size())) {
    std::fprintf(stderr,
                 "--replication must be in [1, %zu] (the member count)\n",
                 members.size());
    return 1;
  }
  options.replication_factor = static_cast<size_t>(replication);
  const int64_t peer_timeout = args.GetInt("peer-timeout-ms", 5000);
  const int64_t health_interval = args.GetInt("health-interval-ms", 250);
  if (peer_timeout < 1 || peer_timeout > 600000 || health_interval < 0 ||
      health_interval > 600000) {
    std::fprintf(stderr, "--peer-timeout-ms must be in [1, 600000] and "
                         "--health-interval-ms in [0, 600000]\n");
    return 1;
  }
  options.peer_timeout_ms = static_cast<int>(peer_timeout);
  options.health_interval_ms = static_cast<int>(health_interval);
  options.trace_log_path = args.Get("trace-log");

  cluster::Router router(members, options);
  std::string error;
  if (!router.Start(&error)) {
    std::fprintf(stderr, "failed to start router: %s\n", error.c_str());
    return 2;
  }
  std::printf("listening on http://%s:%u (router over %zu replicas, "
              "replication=%zu%s)\n",
              options.http.bind_address.c_str(), router.port(),
              members.size(), options.replication_factor,
              options.trace_log_path.empty()
                  ? ""
                  : (", trace-log " + options.trace_log_path).c_str());
  std::fflush(stdout);

  std::signal(SIGINT, OnStopSignal);
  std::signal(SIGTERM, OnStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("signal received: draining\n");
  router.Stop();

  const cluster::Router::Stats stats = router.stats();
  std::printf(
      "router: reads_routed=%llu writes_routed=%llu failovers=%llu "
      "no_replica=%llu trace_records=%llu healthy_replicas=%zu\n",
      static_cast<unsigned long long>(stats.reads_routed),
      static_cast<unsigned long long>(stats.writes_routed),
      static_cast<unsigned long long>(stats.failovers),
      static_cast<unsigned long long>(stats.no_replica),
      static_cast<unsigned long long>(stats.trace_records),
      stats.healthy_replicas);
  return 0;
}

// serve --http-port: expose the service over HTTP/JSON and run until
// SIGINT/SIGTERM. Shutdown order matters: the HTTP server drains first
// (handlers can still resolve futures against a live service), then the
// service drains its own queue.
int ServeHttp(const Args& args, service::GraphRegistry& registry,
              service::DecompositionService& service) {
  // Port 0 asks the kernel for an ephemeral port; the bound port is
  // printed on the "listening on" line below.
  const int64_t port = args.GetInt("http-port", 8080);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "--http-port must be in [0, 65535], got %lld\n",
                 static_cast<long long>(port));
    return 1;
  }
  server::HttpServerOptions http_options;
  http_options.port = static_cast<uint16_t>(port);
  http_options.num_threads =
      static_cast<int>(args.GetInt("http-threads", 4));
  server::HttpServer http_server(http_options);

  // With --cluster-id the frontend registers no routes of its own: the
  // ClusterNode wraps every endpoint with ownership-aware routing and
  // delegates the local work back to the frontend's handlers.
  const std::string cluster_id = args.Get("cluster-id");
  server::DecompositionHttpFrontend frontend(
      registry, service, http_server, /*register_routes=*/cluster_id.empty());

  std::unique_ptr<cluster::ClusterNode> node;
  if (!cluster_id.empty()) {
    cluster::ClusterNodeOptions cluster_options;
    cluster_options.self_id = cluster_id;
    std::string member_error;
    if (!cluster::ParseClusterMembers(args.Get("cluster-members"),
                                      &cluster_options.members,
                                      &member_error)) {
      std::fprintf(stderr, "--cluster-members: %s\n", member_error.c_str());
      return 1;
    }
    bool self_listed = false;
    for (const cluster::ClusterMember& member : cluster_options.members) {
      self_listed = self_listed || member.id == cluster_id;
    }
    if (!self_listed) {
      std::fprintf(stderr, "--cluster-id '%s' is not in --cluster-members\n",
                   cluster_id.c_str());
      return 1;
    }
    const int64_t replication =
        args.GetInt("replication", cluster_options.replication_factor);
    if (replication < 1 ||
        replication > static_cast<int64_t>(cluster_options.members.size())) {
      std::fprintf(stderr,
                   "--replication must be in [1, %zu] (the member count)\n",
                   cluster_options.members.size());
      return 1;
    }
    cluster_options.replication_factor = static_cast<size_t>(replication);
    if (!ParseOnOff(args, "cluster-proxy", cluster_options.proxy,
                    &cluster_options.proxy)) {
      return 1;
    }
    const int64_t peer_timeout = args.GetInt("peer-timeout-ms", 5000);
    if (peer_timeout < 1 || peer_timeout > 600000) {
      std::fprintf(stderr, "--peer-timeout-ms must be in [1, 600000]\n");
      return 1;
    }
    cluster_options.peer_timeout_ms = static_cast<int>(peer_timeout);
    node = std::make_unique<cluster::ClusterNode>(cluster_options, registry,
                                                  service, frontend,
                                                  http_server);
  }

  std::string error;
  if (!http_server.Start(&error)) {
    std::fprintf(stderr, "failed to start HTTP server: %s\n", error.c_str());
    return 2;
  }
  if (node != nullptr) {
    // With --http-port 0 the advertised spec for this member is stale;
    // fix it up now that the real port is known.
    node->SetMemberEndpoint(cluster_id, http_options.bind_address,
                            http_server.port());
    std::printf("cluster member '%s' (replication=%lld, %s)\n",
                cluster_id.c_str(),
                static_cast<long long>(args.GetInt("replication", 2)),
                args.Get("cluster-proxy", "on") != "off" ? "proxying"
                                                         : "redirecting");
  }
  std::printf("listening on http://%s:%u (POST /v1/decompose, "
              "GET|POST /v1/graphs, POST /v1/graphs/{name}/edges, "
              "POST /v1/admin/snapshot, GET /healthz, GET /statz, "
              "GET /metrics, GET /v1/traces[/{id}])\n",
              http_options.bind_address.c_str(), http_server.port());
  std::fflush(stdout);

  std::signal(SIGINT, OnStopSignal);
  std::signal(SIGTERM, OnStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("signal received: draining\n");

  http_server.Stop();
  service.Shutdown(/*drain=*/true);

  const server::HttpServer::Stats http = http_server.stats();
  const server::DecompositionHttpFrontend::Stats fe = frontend.stats();
  const service::DecompositionService::Stats stats = service.stats();
  std::printf(
      "http: connections=%llu requests=%llu 2xx=%llu 4xx=%llu 5xx=%llu "
      "busy_429=%llu disconnect_cancels=%llu\n",
      static_cast<unsigned long long>(http.connections_accepted),
      static_cast<unsigned long long>(http.requests),
      static_cast<unsigned long long>(http.responses_2xx),
      static_cast<unsigned long long>(http.responses_4xx),
      static_cast<unsigned long long>(http.responses_5xx),
      static_cast<unsigned long long>(fe.rejected_busy),
      static_cast<unsigned long long>(fe.disconnect_cancels));
  if (node != nullptr) {
    const cluster::ClusterNode::Stats cs = node->stats();
    std::printf(
        "cluster: local_reads=%llu proxied=%llu redirected=%llu "
        "stale_rejects=%llu replicated_out=%llu replication_failures=%llu "
        "chain_syncs=%llu replicated_applies=%llu\n",
        static_cast<unsigned long long>(cs.local_reads),
        static_cast<unsigned long long>(cs.proxied),
        static_cast<unsigned long long>(cs.redirected),
        static_cast<unsigned long long>(cs.stale_rejects),
        static_cast<unsigned long long>(cs.replicated_out),
        static_cast<unsigned long long>(cs.replication_failures),
        static_cast<unsigned long long>(cs.chain_syncs),
        static_cast<unsigned long long>(cs.replicated_applies));
  }
  std::printf(
      "service: submitted=%llu engine_runs=%llu cache_hits=%llu "
      "coalesced=%llu cancelled=%llu\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.engine_runs),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.coalesced),
      static_cast<unsigned long long>(stats.cancelled));
  const service::LiveGraphManager::Stats live = service.live().stats();
  std::printf(
      "live updates: batches=%llu updates=%llu seals=%llu "
      "incremental=%llu full=%llu ranges_reused=%llu ranges_repeeled=%llu "
      "pending=%llu\n",
      static_cast<unsigned long long>(live.batches_total),
      static_cast<unsigned long long>(live.updates_total),
      static_cast<unsigned long long>(live.seals_total),
      static_cast<unsigned long long>(live.runs_incremental),
      static_cast<unsigned long long>(live.runs_full),
      static_cast<unsigned long long>(live.ranges_reused),
      static_cast<unsigned long long>(live.ranges_repeeled),
      static_cast<unsigned long long>(live.pending_edges));
  const service::DecompositionService::SchedulerStats sched =
      service.scheduler_stats();
  std::printf(
      "scheduler: nodes=%d pinned=%s local_pops=%llu remote_steals=%llu\n",
      sched.num_nodes, sched.pinned ? "yes" : "no",
      static_cast<unsigned long long>(sched.local_pops),
      static_cast<unsigned long long>(sched.remote_steals));
  if (service.durable()) {
    const durability::DurabilityStats durable = service.durability()->stats();
    std::printf(
        "durability: appends=%llu bytes=%llu fsyncs=%llu rotations=%llu "
        "snapshots=%llu append_failures=%llu snapshot_failures=%llu "
        "broken=%s\n",
        static_cast<unsigned long long>(durable.journal.appends),
        static_cast<unsigned long long>(durable.journal.bytes_written),
        static_cast<unsigned long long>(durable.journal.fsyncs),
        static_cast<unsigned long long>(durable.journal.rotations),
        static_cast<unsigned long long>(durable.snapshots_written),
        static_cast<unsigned long long>(durable.journal.append_failures),
        static_cast<unsigned long long>(durable.snapshot_failures),
        durable.journal.broken ? "yes" : "no");
  }
  std::printf("workspace growths (all worker pools): %llu\n",
              static_cast<unsigned long long>(service.WorkspaceGrowths()));
  // Final metrics snapshot: the same quantiles /statz serves, printed so a
  // drained run leaves its latency profile in the log.
  const auto print_quantiles = [](const char* label,
                                  const obs::Histogram& histogram) {
    std::printf("%s: count=%llu p50=%.6fs p95=%.6fs p99=%.6fs\n", label,
                static_cast<unsigned long long>(histogram.Count()),
                histogram.Quantile(0.50), histogram.Quantile(0.95),
                histogram.Quantile(0.99));
  };
  std::printf("requests by outcome:");
  for (const service::Status status :
       {service::Status::kOk, service::Status::kNotFound,
        service::Status::kBadRequest, service::Status::kCancelled,
        service::Status::kShutdown}) {
    std::printf(" %s=%llu", service::StatusName(status),
                static_cast<unsigned long long>(
                    service.RequestsWithOutcome(status)));
  }
  std::printf("\n");
  print_quantiles("latency (request)", *service.request_latency_histogram());
  print_quantiles("latency (queue wait)", *service.queue_wait_histogram());
  print_quantiles("latency (engine run)", *service.engine_run_histogram());
  std::printf("traces recorded: %llu (ring capacity %llu)\n",
              static_cast<unsigned long long>(
                  service.observability().traces.recorded()),
              static_cast<unsigned long long>(
                  service.observability().traces.capacity()));
  return 0;
}

// serve: register graphs in a GraphRegistry and drive a DecompositionService
// with a mixed tip/wing workload from concurrent clients. Each unique request
// that reaches the engine prints the same PeelStats block as the one-shot
// `decompose` / `wing` commands, so per-phase timings and wedge counters are
// directly comparable between service mode and one-shot runs.
int CmdServe(const Args& args) {
  service::GraphRegistry registry;
  std::vector<std::pair<std::string, std::string>> graph_files;
  for (const std::string& spec : SplitCommaList(args.Get("graphs"))) {
    const size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
      std::fprintf(stderr, "--graphs entries must be NAME=FILE, got '%s'\n",
                   spec.c_str());
      return 1;
    }
    graph_files.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
  }
  const std::vector<std::string> datasets =
      SplitCommaList(args.Get("datasets"));
  for (const std::string& name : datasets) {
    bool known = false;
    for (const std::string& candidate : PaperAnalogueNames()) {
      known = known || candidate == name;
    }
    if (!known) {
      std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
      return 1;
    }
  }

  service::ServiceOptions service_options;
  service_options.num_workers = static_cast<int>(args.GetInt("workers", 2));
  // HTTP handlers wait on request futures; with no service workers nothing
  // would ever resolve them (no RunQueuedInline caller exists in serve
  // mode) and every decompose would hang until client disconnect.
  if (args.Has("http-port") && service_options.num_workers < 1) {
    std::fprintf(stderr, "--http-port requires --workers >= 1; using 1\n");
    service_options.num_workers = 1;
  }
  if (args.Has("cluster-id") && !args.Has("http-port")) {
    std::fprintf(stderr, "--cluster-id requires --http-port\n");
    return 1;
  }
  service_options.cache_bytes =
      static_cast<size_t>(args.GetInt("cache-mb", 64)) << 20;
  const int64_t queue_capacity = args.GetInt(
      "queue-capacity", static_cast<int64_t>(service_options.queue_capacity));
  if (queue_capacity < 1 || queue_capacity > (int64_t{1} << 20)) {
    std::fprintf(stderr, "--queue-capacity must be in [1, %lld], got %lld\n",
                 static_cast<long long>(int64_t{1} << 20),
                 static_cast<long long>(queue_capacity));
    return 1;
  }
  service_options.queue_capacity = static_cast<size_t>(queue_capacity);
  if (!ParseOnOff(args, "pin-numa", service_options.pin_numa,
                  &service_options.pin_numa)) {
    return 1;
  }
  const int64_t max_pending = args.GetInt(
      "max-pending-edges",
      static_cast<int64_t>(service_options.live_max_pending_edges));
  if (max_pending < 1) {
    std::fprintf(stderr, "--max-pending-edges must be >= 1\n");
    return 1;
  }
  service_options.live_max_pending_edges = static_cast<size_t>(max_pending);
  service_options.live_max_staleness_ms =
      static_cast<uint64_t>(args.GetInt("max-staleness-ms", 0));
  const double dirty_limit = args.GetDouble(
      "dirty-fraction-limit", service_options.live_dirty_fraction_limit);
  if (dirty_limit < 0.0 || dirty_limit > 1.0) {
    std::fprintf(stderr, "--dirty-fraction-limit must be in [0, 1]\n");
    return 1;
  }
  service_options.live_dirty_fraction_limit = dirty_limit;
  std::vector<service::LiveConfig> live_track;
  if (!ParseTrackSpecs(args.Get("live-track"), &live_track)) return 1;

  // Durability: with --data-dir the service journals every state change and
  // replays snapshot + journal on startup before serving anything.
  service_options.data_dir = args.Get("data-dir");
  if (!service_options.data_dir.empty()) {
    const std::string fsync = args.Get("fsync", "always");
    if (!durability::FsyncPolicyFromName(fsync,
                                         &service_options.durability_fsync)) {
      std::fprintf(stderr, "--fsync takes always, batch or off, got '%s'\n",
                   fsync.c_str());
      return 1;
    }
    const int64_t segment_mb = args.GetInt("journal-segment-mb", 64);
    if (segment_mb < 1 || segment_mb > 4096) {
      std::fprintf(stderr, "--journal-segment-mb must be in [1, 4096]\n");
      return 1;
    }
    service_options.journal_segment_bytes =
        static_cast<uint64_t>(segment_mb) << 20;
    if (!ParseOnOff(args, "snapshot-on-seal",
                    service_options.snapshot_on_seal,
                    &service_options.snapshot_on_seal)) {
      return 1;
    }
  } else if (args.Has("fsync") || args.Has("journal-segment-mb") ||
             args.Has("snapshot-on-seal")) {
    std::fprintf(stderr, "--fsync/--journal-segment-mb/--snapshot-on-seal "
                         "need --data-dir\n");
    return 1;
  }

  service::DecompositionService service(registry, service_options);
  if (!service.durability_error().empty()) {
    // Refusing to serve beats silently serving non-durable (or guessed)
    // state out of a directory the operator asked us to recover from.
    std::fprintf(stderr, "durability startup failed: %s\n",
                 service.durability_error().c_str());
    return 2;
  }
  if (service.durable()) {
    const durability::RecoveryReport& recovery = service.recovery_report();
    std::printf(
        "durability: data-dir=%s fsync=%s %s (snapshots=%llu records=%llu "
        "batches=%llu seals=%llu graphs=%llu torn_tail=%s in %.3fs)\n",
        service_options.data_dir.c_str(),
        durability::FsyncPolicyName(service_options.durability_fsync),
        recovery.fresh_start ? "fresh start" : "recovered",
        static_cast<unsigned long long>(recovery.snapshots_loaded),
        static_cast<unsigned long long>(recovery.records_scanned),
        static_cast<unsigned long long>(recovery.batches_replayed),
        static_cast<unsigned long long>(recovery.seals_replayed),
        static_cast<unsigned long long>(recovery.graphs_recovered),
        recovery.torn_tail ? "yes" : "no", recovery.seconds);
  }

  // Register requested graphs through the service so each registration is
  // journaled (a plain registry insert would vanish on restart).
  for (const auto& [name, path] : graph_files) {
    std::string error;
    if (service.RegisterGraphFile(name, path, nullptr, &error) !=
        service::Status::kOk) {
      std::fprintf(stderr, "failed to register '%s': %s\n", name.c_str(),
                   error.c_str());
      return 2;
    }
  }
  for (const std::string& name : datasets) {
    std::string error;
    if (service.RegisterGraph(name, MakePaperAnalogue(name), nullptr,
                              &error) != service::Status::kOk) {
      std::fprintf(stderr, "failed to register '%s': %s\n", name.c_str(),
                   error.c_str());
      return 2;
    }
  }
  const std::vector<std::string> names = registry.Names();
  if (names.empty() && !args.Has("http-port")) {
    std::fprintf(stderr, "need --graphs NAME=FILE,... or --datasets A,B\n");
    return 1;
  }
  for (const std::string& name : names) {
    const service::GraphHandle handle = registry.Acquire(name);
    std::printf("registered %s: |U|=%u |V|=%u |E|=%llu (epoch %llu)\n",
                name.c_str(), handle.graph().num_u(), handle.graph().num_v(),
                static_cast<unsigned long long>(handle.graph().num_edges()),
                static_cast<unsigned long long>(handle.epoch()));
  }

  // Pre-track requested live configurations on every registered graph, so
  // the very first sealed batch already runs incrementally.
  for (const std::string& name : names) {
    for (const service::LiveConfig& config : live_track) {
      std::string error;
      const service::Status status = service.live().Track(
          name, config, static_cast<int>(args.GetInt("threads", 2)), &error);
      if (status != service::Status::kOk) {
        std::fprintf(stderr, "live-track %s on %s failed: %s\n",
                     service::RequestKindName(config.kind), name.c_str(),
                     error.c_str());
        return 2;
      }
      std::printf("live-tracking %s %s (partitions=%u)\n", name.c_str(),
                  service::RequestKindName(config.kind), config.partitions);
    }
  }

  const service::DecompositionService::SchedulerStats sched =
      service.scheduler_stats();
  std::printf("scheduler: nodes=%d pinned=%s workers=%d\n", sched.num_nodes,
              sched.pinned ? "yes" : "no", service.num_workers());

  if (args.Has("http-port")) return ServeHttp(args, registry, service);

  const int clients = static_cast<int>(args.GetInt("clients", 2));
  const int total_requests = static_cast<int>(args.GetInt("requests", 12));
  const int threads = static_cast<int>(args.GetInt("threads", 2));
  const int partitions = static_cast<int>(args.GetInt("partitions", 8));

  // The request mix: cycle (graph × kind/algorithm) so repeats exercise the
  // cache and concurrent duplicates exercise coalescing.
  struct KindAlgo {
    service::RequestKind kind;
    service::Algorithm algorithm;
  };
  const KindAlgo mix[] = {
      {service::RequestKind::kTipU, service::Algorithm::kReceipt},
      {service::RequestKind::kTipV, service::Algorithm::kReceipt},
      {service::RequestKind::kWing, service::Algorithm::kReceiptWing},
  };
  std::vector<service::Request> schedule;
  for (int i = 0; i < total_requests; ++i) {
    const KindAlgo& ka = mix[static_cast<size_t>(i) % std::size(mix)];
    service::Request request;
    request.graph = names[static_cast<size_t>(i) % names.size()];
    request.kind = ka.kind;
    request.algorithm = ka.algorithm;
    request.partitions = partitions;
    request.threads = threads;
    schedule.push_back(std::move(request));
  }

  std::mutex print_mutex;
  std::set<std::string> reported;  // unique requests whose stats printed
  std::atomic<int> failed_requests{0};
  const WallTimer serve_timer;
  std::vector<std::thread> client_threads;
  for (int c = 0; c < std::max(1, clients); ++c) {
    client_threads.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < schedule.size();
           i += static_cast<size_t>(std::max(1, clients))) {
        const service::Request& request = schedule[i];
        const service::Response response = service.Execute(request);
        std::lock_guard<std::mutex> lock(print_mutex);
        std::printf("[client %d] %s %s %s -> %s%s%s\n", c,
                    request.graph.c_str(),
                    service::RequestKindName(request.kind),
                    service::AlgorithmName(request.algorithm),
                    service::StatusName(response.status),
                    response.cache_hit ? " (cache hit)" : "",
                    response.coalesced ? " (coalesced)" : "");
        if (response.status != service::Status::kOk) {
          std::fprintf(stderr, "request failed: %s\n",
                       response.error.c_str());
          ++failed_requests;
          continue;
        }
        const std::string key =
            request.graph + "/" + service::RequestKindName(request.kind) +
            "/" + service::AlgorithmName(request.algorithm);
        if (!response.cache_hit && reported.insert(key).second) {
          std::printf("%s on %s: max=%llu\n%s\n", key.c_str(),
                      request.graph.c_str(),
                      static_cast<unsigned long long>(
                          response.payload->numbers.empty()
                              ? 0
                              : *std::max_element(
                                    response.payload->numbers.begin(),
                                    response.payload->numbers.end())),
                      response.payload->stats.ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : client_threads) t.join();
  const double seconds = serve_timer.Seconds();
  service.Shutdown();

  const service::DecompositionService::Stats stats = service.stats();
  const service::ResultCache::Stats cache = service.cache_stats();
  std::printf(
      "served %llu requests in %.3fs: engine_runs=%llu cache_hits=%llu "
      "coalesced=%llu batched=%llu cancelled=%llu\n",
      static_cast<unsigned long long>(stats.submitted), seconds,
      static_cast<unsigned long long>(stats.engine_runs),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.coalesced),
      static_cast<unsigned long long>(stats.batched_follow_ons),
      static_cast<unsigned long long>(stats.cancelled));
  std::printf("cache: entries=%llu bytes=%llu evictions=%llu\n",
              static_cast<unsigned long long>(cache.entries),
              static_cast<unsigned long long>(cache.bytes),
              static_cast<unsigned long long>(cache.evictions));
  const service::DecompositionService::SchedulerStats final_sched =
      service.scheduler_stats();
  std::printf(
      "scheduler: nodes=%d pinned=%s local_pops=%llu remote_steals=%llu\n",
      final_sched.num_nodes, final_sched.pinned ? "yes" : "no",
      static_cast<unsigned long long>(final_sched.local_pops),
      static_cast<unsigned long long>(final_sched.remote_steals));
  std::printf("workspace growths (all worker pools): %llu\n",
              static_cast<unsigned long long>(service.WorkspaceGrowths()));
  if (failed_requests.load() > 0) {
    std::fprintf(stderr, "%d request(s) failed\n", failed_requests.load());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help") {
    Usage();
    return 0;
  }
  const Args args(argc, argv);
  if (command == "generate") return CmdGenerate(args);
  if (command == "stats") return CmdStats(args);
  if (command == "decompose") return CmdDecompose(args);
  if (command == "wing") return CmdWing(args);
  if (command == "serve") return CmdServe(args);
  if (command == "router") return CmdRouter(args);
  if (command == "update") return CmdUpdate(args);
  return Usage();
}
