// Minimal end-to-end example: generate a skewed bipartite graph, count its
// butterflies, run the three tip-decomposition algorithms through the
// shared peeling engine, and run the wing (edge) decomposition extension.
//
// Build: cmake -B build -S . && cmake --build build --target decompose_demo
// Run:   ./build/decompose_demo

#include <cstdio>

#include "receipt/receipt_lib.h"

int main() {
  using namespace receipt;

  const BipartiteGraph graph =
      ChungLuBipartite(/*num_u=*/2000, /*num_v=*/1200, /*num_edges=*/9000,
                       /*alpha_u=*/0.6, /*alpha_v=*/0.7, /*seed=*/42);
  std::printf("graph: |U|=%u |V|=%u |E|=%llu\n", graph.num_u(),
              graph.num_v(),
              static_cast<unsigned long long>(graph.num_edges()));
  std::printf("butterflies: %llu\n",
              static_cast<unsigned long long>(TotalButterflies(graph, 2)));

  TipOptions options;
  options.num_threads = 2;
  options.num_partitions = 10;

  const TipResult bup = BupDecompose(graph, options);
  const TipResult parb = ParbDecompose(graph, options);
  const TipResult receipt = ReceiptDecompose(graph, options);
  std::printf("tip decomposition (U side): theta_max=%llu\n",
              static_cast<unsigned long long>(receipt.MaxTipNumber()));
  std::printf("  BUP     %8.4fs  wedges=%llu\n", bup.stats.seconds_total,
              static_cast<unsigned long long>(bup.stats.TotalWedges()));
  std::printf("  ParB    %8.4fs  wedges=%llu  rounds=%llu\n",
              parb.stats.seconds_total,
              static_cast<unsigned long long>(parb.stats.TotalWedges()),
              static_cast<unsigned long long>(parb.stats.sync_rounds));
  std::printf("  RECEIPT %8.4fs  wedges=%llu  rounds=%llu  subsets=%llu\n",
              receipt.stats.seconds_total,
              static_cast<unsigned long long>(receipt.stats.TotalWedges()),
              static_cast<unsigned long long>(receipt.stats.sync_rounds),
              static_cast<unsigned long long>(receipt.stats.num_subsets));
  const bool agree = bup.tip_numbers == parb.tip_numbers &&
                     bup.tip_numbers == receipt.tip_numbers;
  std::printf("  all tip numbers agree: %s\n", agree ? "yes" : "NO");

  ReceiptWingOptions wing_options;
  wing_options.num_threads = 2;
  wing_options.num_partitions = 4;
  const WingResult wing = ReceiptWingDecompose(graph, wing_options);
  std::printf("wing decomposition: theta_max=%llu  (%.4fs)\n",
              static_cast<unsigned long long>(wing.MaxWingNumber()),
              wing.stats.seconds_total);
  return agree ? 0 : 1;
}
