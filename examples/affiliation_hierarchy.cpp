// Research-group hierarchy mining from an author×paper affiliation network
// (§1): tip decomposition reveals nested collaboration groups — a tight
// core of co-authors inside a looser lab, inside the department.
//
//   $ ./affiliation_hierarchy

#include <cstdio>
#include <vector>

#include "receipt/receipt_lib.h"

int main() {
  using namespace receipt;

  // Nested communities: a 6-author core publishing 30 joint papers, within
  // a 20-author lab sharing 40 papers at lower density, within a 120-author
  // department with occasional cross-papers. Community vertex ranges
  // overlap by construction of the id layout below.
  std::vector<BipartiteGraph::Edge> edges;
  uint64_t seed = 1;
  const auto pseudo = [&seed]() {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return seed >> 33;
  };
  // Core: authors 0..5 on papers 0..29 (dense).
  for (VertexId a = 0; a < 6; ++a) {
    for (VertexId p = 0; p < 30; ++p) {
      if (pseudo() % 100 < 80) edges.push_back({a, p});
    }
  }
  // Lab: authors 0..19 on papers 30..69 (medium).
  for (VertexId a = 0; a < 20; ++a) {
    for (VertexId p = 30; p < 70; ++p) {
      if (pseudo() % 100 < 25) edges.push_back({a, p});
    }
  }
  // Department: authors 0..119 on papers 70..299 (sparse).
  for (VertexId a = 0; a < 120; ++a) {
    for (VertexId p = 70; p < 300; ++p) {
      if (pseudo() % 100 < 3) edges.push_back({a, p});
    }
  }
  const BipartiteGraph network = BipartiteGraph::FromEdges(120, 300, edges);
  std::printf("affiliation network: %u authors x %u papers, %llu edges\n\n",
              network.num_u(), network.num_v(),
              static_cast<unsigned long long>(network.num_edges()));

  TipOptions options;
  options.side = Side::kU;
  options.num_threads = 2;
  options.num_partitions = 8;
  const TipResult result = ReceiptDecompose(network, options);

  // Walk the hierarchy bottom-up: how group structure sharpens with k.
  std::printf("%-12s %10s %18s\n", "k", "#k-tips", "largest k-tip size");
  const Count max_tip = result.MaxTipNumber();
  for (Count k = 1; k <= max_tip; k = k * 4 + 1) {
    const auto tips = ExtractKTips(network, Side::kU, result.tip_numbers, k);
    std::printf("%-12llu %10zu %18zu\n",
                static_cast<unsigned long long>(k), tips.size(),
                tips.empty() ? 0 : tips[0].vertices.size());
  }

  // The top level should isolate the 6-author core.
  const auto top = ExtractKTips(network, Side::kU, result.tip_numbers,
                                max_tip);
  std::printf("\nstrongest group (theta = %llu):",
              static_cast<unsigned long long>(max_tip));
  for (const VertexId a : top[0].vertices) std::printf(" author%u", a);
  std::printf("\n(planted core was authors 0..5)\n");
  return 0;
}
