# Empty compiler generated dependencies file for bench_fig4_distribution.
# This may be replaced when dependencies are built.
