file(REMOVE_RECURSE
  "CMakeFiles/spam_review_detection.dir/examples/spam_review_detection.cpp.o"
  "CMakeFiles/spam_review_detection.dir/examples/spam_review_detection.cpp.o.d"
  "spam_review_detection"
  "spam_review_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_review_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
