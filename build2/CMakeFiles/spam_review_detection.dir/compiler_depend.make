# Empty compiler generated dependencies file for spam_review_detection.
# This may be replaced when dependencies are built.
