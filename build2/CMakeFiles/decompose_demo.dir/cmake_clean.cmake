file(REMOVE_RECURSE
  "CMakeFiles/decompose_demo.dir/examples/decompose_demo.cc.o"
  "CMakeFiles/decompose_demo.dir/examples/decompose_demo.cc.o.d"
  "decompose_demo"
  "decompose_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decompose_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
