# Empty dependencies file for decompose_demo.
# This may be replaced when dependencies are built.
