file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_scalability_u.dir/bench/bench_fig10_scalability_u.cc.o"
  "CMakeFiles/bench_fig10_scalability_u.dir/bench/bench_fig10_scalability_u.cc.o.d"
  "bench_fig10_scalability_u"
  "bench_fig10_scalability_u.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_scalability_u.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
