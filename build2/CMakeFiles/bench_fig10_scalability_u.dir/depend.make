# Empty dependencies file for bench_fig10_scalability_u.
# This may be replaced when dependencies are built.
