file(REMOVE_RECURSE
  "CMakeFiles/bench_wing_extension.dir/bench/bench_wing_extension.cc.o"
  "CMakeFiles/bench_wing_extension.dir/bench/bench_wing_extension.cc.o.d"
  "bench_wing_extension"
  "bench_wing_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wing_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
