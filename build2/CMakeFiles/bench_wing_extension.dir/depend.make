# Empty dependencies file for bench_wing_extension.
# This may be replaced when dependencies are built.
