# Empty compiler generated dependencies file for bench_fig6_optimizations_wedges.
# This may be replaced when dependencies are built.
