file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_optimizations_wedges.dir/bench/bench_fig6_optimizations_wedges.cc.o"
  "CMakeFiles/bench_fig6_optimizations_wedges.dir/bench/bench_fig6_optimizations_wedges.cc.o.d"
  "bench_fig6_optimizations_wedges"
  "bench_fig6_optimizations_wedges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_optimizations_wedges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
