# Empty dependencies file for receipt_core.
# This may be replaced when dependencies are built.
