
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/butterfly/approx_count.cc" "CMakeFiles/receipt_core.dir/src/butterfly/approx_count.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/butterfly/approx_count.cc.o.d"
  "/root/repo/src/butterfly/butterfly_count.cc" "CMakeFiles/receipt_core.dir/src/butterfly/butterfly_count.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/butterfly/butterfly_count.cc.o.d"
  "/root/repo/src/engine/bucket.cc" "CMakeFiles/receipt_core.dir/src/engine/bucket.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/engine/bucket.cc.o.d"
  "/root/repo/src/engine/counting.cc" "CMakeFiles/receipt_core.dir/src/engine/counting.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/engine/counting.cc.o.d"
  "/root/repo/src/engine/graph_maintenance.cc" "CMakeFiles/receipt_core.dir/src/engine/graph_maintenance.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/engine/graph_maintenance.cc.o.d"
  "/root/repo/src/engine/peel_kernels.cc" "CMakeFiles/receipt_core.dir/src/engine/peel_kernels.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/engine/peel_kernels.cc.o.d"
  "/root/repo/src/engine/support_index.cc" "CMakeFiles/receipt_core.dir/src/engine/support_index.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/engine/support_index.cc.o.d"
  "/root/repo/src/engine/workspace.cc" "CMakeFiles/receipt_core.dir/src/engine/workspace.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/engine/workspace.cc.o.d"
  "/root/repo/src/graph/bipartite_graph.cc" "CMakeFiles/receipt_core.dir/src/graph/bipartite_graph.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/graph/bipartite_graph.cc.o.d"
  "/root/repo/src/graph/dynamic_graph.cc" "CMakeFiles/receipt_core.dir/src/graph/dynamic_graph.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/graph/dynamic_graph.cc.o.d"
  "/root/repo/src/graph/generators.cc" "CMakeFiles/receipt_core.dir/src/graph/generators.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "CMakeFiles/receipt_core.dir/src/graph/graph_io.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/induced_subgraph.cc" "CMakeFiles/receipt_core.dir/src/graph/induced_subgraph.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/graph/induced_subgraph.cc.o.d"
  "/root/repo/src/service/decomposition_service.cc" "CMakeFiles/receipt_core.dir/src/service/decomposition_service.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/service/decomposition_service.cc.o.d"
  "/root/repo/src/service/graph_registry.cc" "CMakeFiles/receipt_core.dir/src/service/graph_registry.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/service/graph_registry.cc.o.d"
  "/root/repo/src/service/result_cache.cc" "CMakeFiles/receipt_core.dir/src/service/result_cache.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/service/result_cache.cc.o.d"
  "/root/repo/src/tip/bup.cc" "CMakeFiles/receipt_core.dir/src/tip/bup.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/tip/bup.cc.o.d"
  "/root/repo/src/tip/parb.cc" "CMakeFiles/receipt_core.dir/src/tip/parb.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/tip/parb.cc.o.d"
  "/root/repo/src/tip/receipt.cc" "CMakeFiles/receipt_core.dir/src/tip/receipt.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/tip/receipt.cc.o.d"
  "/root/repo/src/tip/receipt_cd.cc" "CMakeFiles/receipt_core.dir/src/tip/receipt_cd.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/tip/receipt_cd.cc.o.d"
  "/root/repo/src/tip/receipt_fd.cc" "CMakeFiles/receipt_core.dir/src/tip/receipt_fd.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/tip/receipt_fd.cc.o.d"
  "/root/repo/src/tip/tip_hierarchy.cc" "CMakeFiles/receipt_core.dir/src/tip/tip_hierarchy.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/tip/tip_hierarchy.cc.o.d"
  "/root/repo/src/util/stats.cc" "CMakeFiles/receipt_core.dir/src/util/stats.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/util/stats.cc.o.d"
  "/root/repo/src/wing/edge_topology.cc" "CMakeFiles/receipt_core.dir/src/wing/edge_topology.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/wing/edge_topology.cc.o.d"
  "/root/repo/src/wing/receipt_wing.cc" "CMakeFiles/receipt_core.dir/src/wing/receipt_wing.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/wing/receipt_wing.cc.o.d"
  "/root/repo/src/wing/wing_decomposition.cc" "CMakeFiles/receipt_core.dir/src/wing/wing_decomposition.cc.o" "gcc" "CMakeFiles/receipt_core.dir/src/wing/wing_decomposition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
