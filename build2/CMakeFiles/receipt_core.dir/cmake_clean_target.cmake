file(REMOVE_RECURSE
  "libreceipt_core.a"
)
