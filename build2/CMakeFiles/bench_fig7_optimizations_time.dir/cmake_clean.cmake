file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_optimizations_time.dir/bench/bench_fig7_optimizations_time.cc.o"
  "CMakeFiles/bench_fig7_optimizations_time.dir/bench/bench_fig7_optimizations_time.cc.o.d"
  "bench_fig7_optimizations_time"
  "bench_fig7_optimizations_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_optimizations_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
