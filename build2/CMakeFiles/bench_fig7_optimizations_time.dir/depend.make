# Empty dependencies file for bench_fig7_optimizations_time.
# This may be replaced when dependencies are built.
