file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_time_breakup.dir/bench/bench_fig9_time_breakup.cc.o"
  "CMakeFiles/bench_fig9_time_breakup.dir/bench/bench_fig9_time_breakup.cc.o.d"
  "bench_fig9_time_breakup"
  "bench_fig9_time_breakup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_time_breakup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
