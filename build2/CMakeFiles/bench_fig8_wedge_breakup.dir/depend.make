# Empty dependencies file for bench_fig8_wedge_breakup.
# This may be replaced when dependencies are built.
