# Empty dependencies file for bench_frontier_micro.
# This may be replaced when dependencies are built.
