file(REMOVE_RECURSE
  "CMakeFiles/bench_frontier_micro.dir/bench/bench_frontier_micro.cc.o"
  "CMakeFiles/bench_frontier_micro.dir/bench/bench_frontier_micro.cc.o.d"
  "bench_frontier_micro"
  "bench_frontier_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frontier_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
