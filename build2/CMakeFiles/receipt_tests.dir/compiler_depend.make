# Empty compiler generated dependencies file for receipt_tests.
# This may be replaced when dependencies are built.
