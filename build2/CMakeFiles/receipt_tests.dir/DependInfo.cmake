
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/approx_count_test.cc" "CMakeFiles/receipt_tests.dir/tests/approx_count_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/approx_count_test.cc.o.d"
  "/root/repo/tests/bipartite_graph_test.cc" "CMakeFiles/receipt_tests.dir/tests/bipartite_graph_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/bipartite_graph_test.cc.o.d"
  "/root/repo/tests/bucket_test.cc" "CMakeFiles/receipt_tests.dir/tests/bucket_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/bucket_test.cc.o.d"
  "/root/repo/tests/bup_test.cc" "CMakeFiles/receipt_tests.dir/tests/bup_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/bup_test.cc.o.d"
  "/root/repo/tests/butterfly_count_test.cc" "CMakeFiles/receipt_tests.dir/tests/butterfly_count_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/butterfly_count_test.cc.o.d"
  "/root/repo/tests/determinism_test.cc" "CMakeFiles/receipt_tests.dir/tests/determinism_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/determinism_test.cc.o.d"
  "/root/repo/tests/dynamic_graph_test.cc" "CMakeFiles/receipt_tests.dir/tests/dynamic_graph_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/dynamic_graph_test.cc.o.d"
  "/root/repo/tests/edge_topology_test.cc" "CMakeFiles/receipt_tests.dir/tests/edge_topology_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/edge_topology_test.cc.o.d"
  "/root/repo/tests/engine_workspace_test.cc" "CMakeFiles/receipt_tests.dir/tests/engine_workspace_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/engine_workspace_test.cc.o.d"
  "/root/repo/tests/extraction_test.cc" "CMakeFiles/receipt_tests.dir/tests/extraction_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/extraction_test.cc.o.d"
  "/root/repo/tests/generators_test.cc" "CMakeFiles/receipt_tests.dir/tests/generators_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/generators_test.cc.o.d"
  "/root/repo/tests/graph_io_test.cc" "CMakeFiles/receipt_tests.dir/tests/graph_io_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/graph_io_test.cc.o.d"
  "/root/repo/tests/induced_subgraph_test.cc" "CMakeFiles/receipt_tests.dir/tests/induced_subgraph_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/induced_subgraph_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "CMakeFiles/receipt_tests.dir/tests/integration_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/integration_test.cc.o.d"
  "/root/repo/tests/min_heap_test.cc" "CMakeFiles/receipt_tests.dir/tests/min_heap_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/min_heap_test.cc.o.d"
  "/root/repo/tests/pairing_heap_test.cc" "CMakeFiles/receipt_tests.dir/tests/pairing_heap_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/pairing_heap_test.cc.o.d"
  "/root/repo/tests/parallel_util_test.cc" "CMakeFiles/receipt_tests.dir/tests/parallel_util_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/parallel_util_test.cc.o.d"
  "/root/repo/tests/parb_test.cc" "CMakeFiles/receipt_tests.dir/tests/parb_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/parb_test.cc.o.d"
  "/root/repo/tests/peel_update_test.cc" "CMakeFiles/receipt_tests.dir/tests/peel_update_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/peel_update_test.cc.o.d"
  "/root/repo/tests/pipeline_test.cc" "CMakeFiles/receipt_tests.dir/tests/pipeline_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/pipeline_test.cc.o.d"
  "/root/repo/tests/range_bound_test.cc" "CMakeFiles/receipt_tests.dir/tests/range_bound_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/range_bound_test.cc.o.d"
  "/root/repo/tests/receipt_cd_test.cc" "CMakeFiles/receipt_tests.dir/tests/receipt_cd_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/receipt_cd_test.cc.o.d"
  "/root/repo/tests/receipt_fd_test.cc" "CMakeFiles/receipt_tests.dir/tests/receipt_fd_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/receipt_fd_test.cc.o.d"
  "/root/repo/tests/receipt_test.cc" "CMakeFiles/receipt_tests.dir/tests/receipt_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/receipt_test.cc.o.d"
  "/root/repo/tests/receipt_wing_test.cc" "CMakeFiles/receipt_tests.dir/tests/receipt_wing_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/receipt_wing_test.cc.o.d"
  "/root/repo/tests/service_test.cc" "CMakeFiles/receipt_tests.dir/tests/service_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/service_test.cc.o.d"
  "/root/repo/tests/tip_hierarchy_test.cc" "CMakeFiles/receipt_tests.dir/tests/tip_hierarchy_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/tip_hierarchy_test.cc.o.d"
  "/root/repo/tests/wing_test.cc" "CMakeFiles/receipt_tests.dir/tests/wing_test.cc.o" "gcc" "CMakeFiles/receipt_tests.dir/tests/wing_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/CMakeFiles/receipt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
