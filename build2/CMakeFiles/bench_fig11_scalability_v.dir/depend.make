# Empty dependencies file for bench_fig11_scalability_v.
# This may be replaced when dependencies are built.
