file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_scalability_v.dir/bench/bench_fig11_scalability_v.cc.o"
  "CMakeFiles/bench_fig11_scalability_v.dir/bench/bench_fig11_scalability_v.cc.o.d"
  "bench_fig11_scalability_v"
  "bench_fig11_scalability_v.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_scalability_v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
