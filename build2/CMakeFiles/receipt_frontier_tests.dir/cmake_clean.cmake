file(REMOVE_RECURSE
  "CMakeFiles/receipt_frontier_tests.dir/tests/engine_equivalence_test.cc.o"
  "CMakeFiles/receipt_frontier_tests.dir/tests/engine_equivalence_test.cc.o.d"
  "CMakeFiles/receipt_frontier_tests.dir/tests/frontier_scheduling_test.cc.o"
  "CMakeFiles/receipt_frontier_tests.dir/tests/frontier_scheduling_test.cc.o.d"
  "receipt_frontier_tests"
  "receipt_frontier_tests.pdb"
  "receipt_frontier_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/receipt_frontier_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
