# Empty dependencies file for receipt_frontier_tests.
# This may be replaced when dependencies are built.
