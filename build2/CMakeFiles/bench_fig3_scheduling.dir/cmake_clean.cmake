file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_scheduling.dir/bench/bench_fig3_scheduling.cc.o"
  "CMakeFiles/bench_fig3_scheduling.dir/bench/bench_fig3_scheduling.cc.o.d"
  "bench_fig3_scheduling"
  "bench_fig3_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
