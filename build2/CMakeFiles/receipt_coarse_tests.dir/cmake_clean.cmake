file(REMOVE_RECURSE
  "CMakeFiles/receipt_coarse_tests.dir/tests/coarse_index_test.cc.o"
  "CMakeFiles/receipt_coarse_tests.dir/tests/coarse_index_test.cc.o.d"
  "receipt_coarse_tests"
  "receipt_coarse_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/receipt_coarse_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
