# Empty dependencies file for receipt_coarse_tests.
# This may be replaced when dependencies are built.
