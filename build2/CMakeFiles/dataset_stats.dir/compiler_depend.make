# Empty compiler generated dependencies file for dataset_stats.
# This may be replaced when dependencies are built.
