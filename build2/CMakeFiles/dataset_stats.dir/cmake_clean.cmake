file(REMOVE_RECURSE
  "CMakeFiles/dataset_stats.dir/examples/dataset_stats.cpp.o"
  "CMakeFiles/dataset_stats.dir/examples/dataset_stats.cpp.o.d"
  "dataset_stats"
  "dataset_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
