file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_extraction.dir/bench/bench_ablation_extraction.cc.o"
  "CMakeFiles/bench_ablation_extraction.dir/bench/bench_ablation_extraction.cc.o.d"
  "bench_ablation_extraction"
  "bench_ablation_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
