# Empty compiler generated dependencies file for bench_fig5_partitions.
# This may be replaced when dependencies are built.
