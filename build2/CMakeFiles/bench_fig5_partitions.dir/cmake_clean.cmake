file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_partitions.dir/bench/bench_fig5_partitions.cc.o"
  "CMakeFiles/bench_fig5_partitions.dir/bench/bench_fig5_partitions.cc.o.d"
  "bench_fig5_partitions"
  "bench_fig5_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
