file(REMOVE_RECURSE
  "CMakeFiles/bench_counting_micro.dir/bench/bench_counting_micro.cc.o"
  "CMakeFiles/bench_counting_micro.dir/bench/bench_counting_micro.cc.o.d"
  "bench_counting_micro"
  "bench_counting_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counting_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
