# Empty dependencies file for receipt_bench_common.
# This may be replaced when dependencies are built.
