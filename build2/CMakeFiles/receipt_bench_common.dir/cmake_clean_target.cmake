file(REMOVE_RECURSE
  "libreceipt_bench_common.a"
)
