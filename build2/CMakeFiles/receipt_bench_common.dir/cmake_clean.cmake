file(REMOVE_RECURSE
  "CMakeFiles/receipt_bench_common.dir/bench/bench_common.cc.o"
  "CMakeFiles/receipt_bench_common.dir/bench/bench_common.cc.o.d"
  "libreceipt_bench_common.a"
  "libreceipt_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/receipt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
