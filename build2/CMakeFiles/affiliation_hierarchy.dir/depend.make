# Empty dependencies file for affiliation_hierarchy.
# This may be replaced when dependencies are built.
