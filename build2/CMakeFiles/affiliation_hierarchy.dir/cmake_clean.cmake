file(REMOVE_RECURSE
  "CMakeFiles/affiliation_hierarchy.dir/examples/affiliation_hierarchy.cpp.o"
  "CMakeFiles/affiliation_hierarchy.dir/examples/affiliation_hierarchy.cpp.o.d"
  "affiliation_hierarchy"
  "affiliation_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affiliation_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
