file(REMOVE_RECURSE
  "CMakeFiles/bench_coarse_micro.dir/bench/bench_coarse_micro.cc.o"
  "CMakeFiles/bench_coarse_micro.dir/bench/bench_coarse_micro.cc.o.d"
  "bench_coarse_micro"
  "bench_coarse_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coarse_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
