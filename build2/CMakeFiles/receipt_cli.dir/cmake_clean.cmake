file(REMOVE_RECURSE
  "CMakeFiles/receipt_cli.dir/examples/receipt_cli.cpp.o"
  "CMakeFiles/receipt_cli.dir/examples/receipt_cli.cpp.o.d"
  "receipt_cli"
  "receipt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/receipt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
