# Empty dependencies file for receipt_cli.
# This may be replaced when dependencies are built.
