# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build2
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/receipt_tests[1]_include.cmake")
include("/root/repo/build2/receipt_frontier_tests[1]_include.cmake")
add_test([=[receipt_coarse_tests]=] "/root/repo/build2/receipt_coarse_tests")
set_tests_properties([=[receipt_coarse_tests]=] PROPERTIES  LABELS "frontier;coarse" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;116;add_test;/root/repo/CMakeLists.txt;0;")
