// Durability micro-benchmark: the per-append overhead the write-ahead
// journal adds to the ack path, per fsync policy, plus the cost of a full
// snapshot write. The serving layer journals every accepted batch before
// acking, so journal append latency is a direct tax on update throughput
// — this bench keeps it visible and gated.
//
// Gate (exit non-zero on violation): with fsync=batch — the recommended
// serving policy — the mean append of a 64-update batch must stay under a
// fixed 750µs budget. That is generous for a page-cache write plus an
// amortized fsync every 256KB, but catches accidental per-record fsyncs or
// O(journal) rescans sneaking into the hot path.
//
// `--json <path>` emits per-policy append stats as a
// BENCH_durability_micro trajectory file. Plain executable: wall-clock
// means over thousands of appends are stable enough without a harness.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "durability/journal.h"
#include "durability/snapshot.h"
#include "util/io.h"
#include "util/timer.h"

namespace receipt::bench {
namespace {

using durability::EdgeOp;
using durability::FsyncPolicy;
using durability::FsyncPolicyName;
using durability::Journal;
using durability::JournalOptions;
using durability::JournalRecord;
using durability::JournalStats;

constexpr size_t kAppends = 2000;
constexpr size_t kBatchSize = 64;
constexpr double kBatchBudgetSeconds = 750e-6;

/// A fixed-shape 64-update record; contents don't affect the IO path.
JournalRecord SampleBatch() {
  JournalRecord record;
  record.type = JournalRecord::Type::kEdgeBatch;
  record.graph = "bench";
  record.epoch = 1;
  record.updates.reserve(kBatchSize);
  for (size_t i = 0; i < kBatchSize; ++i) {
    record.updates.push_back(EdgeOp{(i % 3) != 0,
                                    static_cast<uint32_t>(i * 37 % 5000),
                                    static_cast<uint32_t>(i * 53 % 4000)});
  }
  return record;
}

struct AppendRun {
  double mean_seconds = 0.0;
  double total_seconds = 0.0;
  JournalStats stats;
};

bool RunAppends(const std::string& dir, FsyncPolicy policy, AppendRun* run) {
  JournalOptions options;
  options.dir = dir;
  options.fsync = policy;
  std::string error;
  std::unique_ptr<Journal> journal = Journal::Open(options, &error);
  if (journal == nullptr) {
    std::fprintf(stderr, "journal open: %s\n", error.c_str());
    return false;
  }
  const JournalRecord record = SampleBatch();
  WallTimer timer;
  for (size_t i = 0; i < kAppends; ++i) {
    if (!journal->Append(record, &error)) {
      std::fprintf(stderr, "append %zu: %s\n", i, error.c_str());
      return false;
    }
  }
  run->total_seconds = timer.Seconds();
  run->mean_seconds = run->total_seconds / kAppends;
  run->stats = journal->stats();
  return true;
}

int Main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  PrintHeader(
      "durability micro-bench — WAL append overhead per fsync policy, "
      "snapshot write cost");

  std::string root = "/tmp/receipt_bench_durXXXXXX";
  if (::mkdtemp(root.data()) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  std::vector<JsonRecord> records;
  bool ok = true;
  double batch_mean = 0.0;
  for (const FsyncPolicy policy :
       {FsyncPolicy::kOff, FsyncPolicy::kBatch, FsyncPolicy::kAlways}) {
    const std::string dir =
        root + "/journal_" + FsyncPolicyName(policy);
    AppendRun run;
    if (!RunAppends(dir, policy, &run)) {
      ok = false;
      continue;
    }
    if (policy == FsyncPolicy::kBatch) batch_mean = run.mean_seconds;
    std::printf(
        "fsync=%-6s  %5zu appends x %zu updates  mean %8.1f us  "
        "(%llu fsyncs, %llu rotations, %.1f MB)\n",
        FsyncPolicyName(policy), kAppends, kBatchSize,
        run.mean_seconds * 1e6,
        static_cast<unsigned long long>(run.stats.fsyncs),
        static_cast<unsigned long long>(run.stats.rotations),
        static_cast<double>(run.stats.bytes_written) / (1 << 20));
    JsonRecord record;
    record.name = std::string("append_fsync_") + FsyncPolicyName(policy);
    record.counters = {
        {"appends", run.stats.appends},
        {"bytes_written", run.stats.bytes_written},
        {"fsyncs", run.stats.fsyncs},
        {"rotations", run.stats.rotations},
        {"batch_updates", kBatchSize},
    };
    record.values = {
        {"mean_append_seconds", run.mean_seconds},
        {"total_seconds", run.total_seconds},
    };
    records.push_back(std::move(record));
  }

  // Snapshot write: a mid-sized graph image through the real encode +
  // fsync + atomic-rename path. Informational (no gate — size-dependent).
  {
    durability::SnapshotData data;
    data.graph = "bench";
    data.epoch = 3;
    data.num_u = 50000;
    data.num_v = 40000;
    data.edges.reserve(500000);
    for (uint32_t i = 0; i < 500000; ++i) {
      data.edges.push_back({i % 50000, (i * 7919) % 40000});
    }
    const std::string dir = root + "/snapshots";
    std::string error;
    WallTimer timer;
    if (!util::io::EnsureDir(dir, &error) ||
        !durability::WriteSnapshotFile(dir, data, &error)) {
      std::fprintf(stderr, "snapshot write: %s\n", error.c_str());
      ok = false;
    } else {
      const double seconds = timer.Seconds();
      const uint64_t bytes = std::filesystem::file_size(
          durability::SnapshotPath(dir, data.graph));
      std::printf("snapshot      %zu edges  %.1f MB  in %.3f s\n",
                  data.edges.size(),
                  static_cast<double>(bytes) / (1 << 20), seconds);
      JsonRecord record;
      record.name = "snapshot_write";
      record.counters = {{"edges", data.edges.size()}, {"bytes", bytes}};
      record.values = {{"seconds", seconds}};
      records.push_back(std::move(record));
    }
  }

  PrintRule();
  const bool within_budget = batch_mean > 0.0 && batch_mean < kBatchBudgetSeconds;
  std::printf("gate: fsync=batch mean append %.1f us vs budget %.1f us — %s\n",
              batch_mean * 1e6, kBatchBudgetSeconds * 1e6,
              within_budget ? "OK" : "FAILED");
  ok = ok && within_budget;
  std::printf("verdict: %s\n", ok ? "OK" : "FAILED");

  if (!json_path.empty()) {
    if (!WriteBenchJson(json_path, "durability_micro", records)) ok = false;
  }
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) { return receipt::bench::Main(argc, argv); }
