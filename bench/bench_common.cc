#include "bench_common.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>

#include "util/json.h"

namespace receipt::bench {
namespace {

int EnvOrDefault(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace

const BipartiteGraph& Dataset(const std::string& name) {
  static std::map<std::string, BipartiteGraph>& cache =
      *new std::map<std::string, BipartiteGraph>();
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, MakePaperAnalogue(name)).first;
  }
  return it->second;
}

std::vector<Target> AllTargets() {
  std::vector<Target> targets;
  for (const std::string& name : PaperAnalogueNames()) {
    std::string cap = name;
    cap[0] = static_cast<char>(cap[0] - 'a' + 'A');
    targets.push_back({cap + "U", name, Side::kU});
    targets.push_back({cap + "V", name, Side::kV});
  }
  return targets;
}

int DefaultThreads() { return EnvOrDefault("RECEIPT_BENCH_THREADS", 4); }

int DefaultPartitions() {
  return EnvOrDefault("RECEIPT_BENCH_PARTITIONS", 30);
}

namespace {

// Table 3 of the paper, transcribed. -1 = not reported (OOM or >10 days).
constexpr PaperTable3Row kPaperTable3[] = {
    //  label  t_cnt   t_bup     t_parb   t_rec   w_bup    w_rec  rho_parb rho_rec
    {"ItU", 0.3, 3849, 3677, 56.8, 723, 71, 377904, 967},
    {"ItV", 0.3, 8.4, 8.1, 3.1, 0.57, 0.56, 10054, 280},
    {"DeU", 8.3, 12260, -1, 402.4, 2861, 1503, 670189, 1113},
    {"DeV", 8.3, 428, 377.7, 32.4, 70.1, 51.3, 127328, 406},
    {"OrU", 45.6, 39079, -1, 1865, 4975, 2728, 1136129, 1160},
    {"OrV", 45.6, 2297, 1510, 136, 231.4, 170.4, 334064, 639},
    {"LjU", 5.1, 67588, -1, 911.1, 5403, 1003, 1479495, 1477},
    {"LjV", 5.1, 200, 132.5, 23.7, 14.3, 11.7, 83423, 456},
    {"EnU", 6.9, 111777, -1, 1383, 12583, 2414, 1512922, 1724},
    {"EnV", 6.9, 281, 198, 31.1, 29.6, 22.2, 83800, 453},
    {"TrU", 7.8, -1, -1, 2784, 211156, 3298, 1476015, 1335},
    {"TrV", 7.8, 5711, 3524, 530.6, 1740, 658.1, 342672, 1381},
};

constexpr PaperTable2Row kPaperTable2[] = {
    {"it", 298, 361, 1555462, 5328302365.0},
    {"de", 26683, 1446, 936468800.0, 91968444615.0},
    {"or", 22131, 2528, 88812453.0, 29285249823.0},
    {"lj", 3297, 2703, 4670317.0, 82785273931.0},
    {"en", 2036, 6299, 37217466.0, 96241348356.0},
    {"tr", 20068, 106441, 18667660476.0, 3030765085153.0},
};

}  // namespace

const PaperTable3Row* FindPaperRow(const std::string& label) {
  for (const PaperTable3Row& row : kPaperTable3) {
    if (label == row.label) return &row;
  }
  return nullptr;
}

const PaperTable2Row* FindPaperTable2Row(const std::string& dataset) {
  for (const PaperTable2Row& row : kPaperTable2) {
    if (dataset == row.dataset) return &row;
  }
  return nullptr;
}

PeelStats RunReceiptAblation(const Target& target, AblationConfig config) {
  TipOptions options;
  options.side = target.side;
  options.num_threads = DefaultThreads();
  options.num_partitions = DefaultPartitions();
  options.use_dgm = config == AblationConfig::kFull;
  options.use_huc = config != AblationConfig::kNeither;
  return ReceiptDecompose(Dataset(target.dataset), options).stats;
}

void PrintRule(char fill) {
  for (int i = 0; i < 100; ++i) std::putchar(fill);
  std::putchar('\n');
}

void PrintHeader(const std::string& title) {
  PrintRule('=');
  std::printf("%s\n", title.c_str());
  std::printf(
      "datasets: deterministic scaled analogues of the paper's KONECT "
      "graphs (see DESIGN.md section 2);\nabsolute numbers differ by design "
      "— compare shapes/ratios against the paper columns.\n");
  PrintRule('=');
}

std::string ConsumeJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= *argc) {
        // Fail fast: silently dropping the flag would let a CI step
        // believe a trajectory file was produced when none was.
        std::fprintf(stderr, "--json requires a path argument\n");
        std::exit(2);
      }
      path = argv[i + 1];
      ++i;  // skip the value
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return path;
}

void AppendPeelStats(const PeelStats& stats, JsonRecord* record) {
  record->counters.emplace_back("wedges_counting", stats.wedges_counting);
  record->counters.emplace_back("wedges_cd", stats.wedges_cd);
  record->counters.emplace_back("wedges_fd", stats.wedges_fd);
  record->counters.emplace_back("wedges_other", stats.wedges_other);
  record->counters.emplace_back("sync_rounds", stats.sync_rounds);
  record->counters.emplace_back("peel_iterations", stats.peel_iterations);
  record->counters.emplace_back("huc_recounts", stats.huc_recounts);
  record->counters.emplace_back("dgm_compactions", stats.dgm_compactions);
  record->counters.emplace_back("frontier_rounds", stats.frontier_rounds);
  record->counters.emplace_back("scan_rounds", stats.scan_rounds);
  record->counters.emplace_back("index_build_rounds",
                                stats.index_build_rounds);
  record->counters.emplace_back("scan_build_elements",
                                stats.scan_build_elements);
  record->counters.emplace_back("frontier_build_elements",
                                stats.frontier_build_elements);
  record->counters.emplace_back("index_active_elements",
                                stats.index_active_elements);
  record->counters.emplace_back("active_scan_elements",
                                stats.active_scan_elements);
  record->counters.emplace_back("bound_walk_buckets",
                                stats.bound_walk_buckets);
  record->counters.emplace_back("histogram_refines", stats.histogram_refines);
  record->counters.emplace_back("init_patch_elements",
                                stats.init_patch_elements);
  record->counters.emplace_back("index_rebuild_elements",
                                stats.index_rebuild_elements);
  record->counters.emplace_back("placement_nodes", stats.placement_nodes);
  record->counters.emplace_back("placement_local_pops",
                                stats.placement_local_pops);
  record->counters.emplace_back("placement_remote_steals",
                                stats.placement_remote_steals);
  record->counters.emplace_back("makespan_predicted",
                                stats.makespan_predicted);
  record->counters.emplace_back("makespan_measured",
                                stats.makespan_measured);
  record->counters.emplace_back("num_subsets", stats.num_subsets);
  record->values.emplace_back("scan_cost_per_element",
                              stats.scan_cost_per_element);
  record->values.emplace_back("frontier_cost_per_element",
                              stats.frontier_cost_per_element);
  record->values.emplace_back("seconds_counting", stats.seconds_counting);
  record->values.emplace_back("seconds_cd", stats.seconds_cd);
  record->values.emplace_back("seconds_fd", stats.seconds_fd);
  record->values.emplace_back("seconds_total", stats.seconds_total);
}

bool WriteBenchJson(const std::string& path, const std::string& bench,
                    const std::vector<JsonRecord>& records) {
  // Rides the shared util::JsonWriter (the same writer the HTTP front-end
  // serializes responses with), so escaping and number formatting are
  // identical across every JSON byte the repo emits.
  util::JsonWriter writer;
  writer.BeginObject().Key("bench").String(bench).Key("records").BeginArray();
  for (const JsonRecord& record : records) {
    writer.BeginObject().Key("name").String(record.name);
    for (const auto& [key, value] : record.counters) {
      writer.Key(key).Uint(value);
    }
    for (const auto& [key, value] : record.values) {
      writer.Key(key).Double(value);
    }
    writer.EndObject();
  }
  writer.EndArray().EndObject();

  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write JSON output to %s\n", path.c_str());
    return false;
  }
  file << writer.str() << "\n";
  return static_cast<bool>(file);
}

}  // namespace receipt::bench
