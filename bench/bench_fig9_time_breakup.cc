// Reproduces Fig. 9: percentage of execution time attributable to each
// RECEIPT step — CD peeling, FD, and pvBcnt counting — per dataset × side.
// The paper's shape: CD > 50% everywhere; FD usually < 25%; pvBcnt matters
// on low-r (V-side) targets.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace receipt::bench {
namespace {

std::map<std::string, PeelStats>& Rows() {
  static auto& rows = *new std::map<std::string, PeelStats>();
  return rows;
}

void Breakup(benchmark::State& state, const Target& target) {
  PeelStats stats;
  for (auto _ : state) {
    stats = RunReceiptAblation(target, AblationConfig::kFull);
  }
  state.counters["seconds_cd"] = stats.seconds_cd;
  state.counters["seconds_fd"] = stats.seconds_fd;
  state.counters["seconds_cnt"] = stats.seconds_counting;
  Rows()[target.label] = stats;
}

void PrintTable() {
  PrintHeader(
      "Fig. 9 reproduction — breakup of execution time per RECEIPT step");
  std::printf("%-5s | %9s %9s %9s %9s | %7s %7s %7s\n", "tgt", "CD(s)",
              "FD(s)", "pvBcnt(s)", "total(s)", "%CD", "%FD", "%cnt");
  PrintRule();
  for (const Target& target : AllTargets()) {
    const PeelStats& s = Rows()[target.label];
    const double accounted = s.seconds_cd + s.seconds_fd + s.seconds_counting;
    const double total = accounted > 0 ? accounted : 1.0;
    std::printf(
        "%-5s | %9.3f %9.3f %9.3f %9.3f | %6.1f%% %6.1f%% %6.1f%%\n",
        target.label.c_str(), s.seconds_cd, s.seconds_fd,
        s.seconds_counting, s.seconds_total, 100.0 * s.seconds_cd / total,
        100.0 * s.seconds_fd / total, 100.0 * s.seconds_counting / total);
  }
  PrintRule();
  std::printf(
      "expected shape (paper Fig. 9): CD dominates; pvBcnt share grows on "
      "the cheap V-side targets.\n\n");
}

std::vector<JsonRecord> CollectRecords() {
  std::vector<JsonRecord> records;
  for (const auto& [label, stats] : Rows()) {
    JsonRecord record;
    record.name = label;
    AppendPeelStats(stats, &record);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) {
  const std::string json_path = receipt::bench::ConsumeJsonFlag(&argc, argv);
  for (const receipt::bench::Target& target : receipt::bench::AllTargets()) {
    benchmark::RegisterBenchmark(
        ("Fig9/" + target.label).c_str(),
        [target](benchmark::State& state) {
          receipt::bench::Breakup(state, target);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintTable();
  if (!json_path.empty() &&
      !receipt::bench::WriteBenchJson(json_path, "fig9_time_breakup",
                                      receipt::bench::CollectRecords())) {
    return 1;
  }
  return 0;
}
