// Observability micro-benchmark: the null-sink guarantee. Tracing and
// metrics ride the engine's hot path through TraceContext, so two things
// must hold before any of it ships:
//
//  * Bit-identicality: a decomposition with a recording TraceContext wired
//    through TipOptions returns exactly the results of an untraced run —
//    same tip numbers, bounds, subsets, subset_of. Observability reads the
//    computation; it never steers it.
//  * Disabled-path cost: with a default (null) TraceContext, EmitSince /
//    ScopedSpan / enabled() must cost a branch on a null pointer — gated at
//    a deliberately lenient per-op ceiling so the gate trips on "someone
//    put a clock read before the enabled() check", not on sanitizer or
//    scheduling noise.
//
// Recording-path costs (Record into the ring, Counter::Increment, Histogram
// ::Observe) and the end-to-end traced-vs-untraced wall-time ratio are
// reported for the log but not gated: wall time on shared CI is noise, and
// the bit-identicality gate is the one that matters. `--json <path>` emits
// a BENCH_obs_micro trajectory file. Plain executable (no google-benchmark).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tip/receipt.h"

namespace receipt::bench {
namespace {

/// Ceiling on the disabled-path per-op cost. A null TraceContext emission
/// is a load + branch (~1 ns); 250 ns absorbs ASan instrumentation and CI
/// scheduling jitter while still catching an accidental clock read or
/// allocation on the disabled path (both land well above it).
constexpr double kNullOpCeilingNs = 250.0;

constexpr uint64_t kPrimitiveOps = 2'000'000;

/// Launders a pointer through volatile so the optimizer cannot prove the
/// TraceContext null and fold the measured loop away.
template <typename T>
T* Launder(T* pointer) {
  T* volatile slot = pointer;
  return slot;
}

double NsPerOp(uint64_t ops, double seconds) {
  return ops == 0 ? 0.0 : seconds * 1e9 / static_cast<double>(ops);
}

TipOptions BaseOptions() {
  TipOptions options;
  options.num_threads = DefaultThreads();
  options.num_partitions = DefaultPartitions();
  // Deterministic direction decisions, as in the other gated micro-benches.
  options.frontier_switch = FrontierSwitch::kFixedDensity;
  return options;
}

bool SameResults(const TipResult& a, const TipResult& b) {
  return a.tip_numbers == b.tip_numbers && a.range_bounds == b.range_bounds &&
         a.subset_of == b.subset_of && a.subsets == b.subsets;
}

bool RunPrimitiveCosts(std::vector<JsonRecord>& records) {
  bool ok = true;
  JsonRecord record;
  record.name = "primitives";

  // -- disabled path: the gated measurement --------------------------------
  obs::TraceContext null_ctx;
  null_ctx.recorder = Launder<obs::TraceRecorder>(nullptr);
  {
    const WallTimer timer;
    for (uint64_t i = 0; i < kPrimitiveOps; ++i) {
      null_ctx.EmitSince("bench.disabled", i, i);
    }
    const double ns = NsPerOp(kPrimitiveOps, timer.Seconds());
    std::printf("null EmitSince        %8.2f ns/op\n", ns);
    record.values.emplace_back("null_emit_ns_per_op", ns);
    if (ns > kNullOpCeilingNs) {
      std::printf("!! null EmitSince %.2f ns/op exceeds the %.0f ns ceiling\n",
                  ns, kNullOpCeilingNs);
      ok = false;
    }
  }
  {
    const WallTimer timer;
    for (uint64_t i = 0; i < kPrimitiveOps; ++i) {
      obs::ScopedSpan span(null_ctx, "bench.disabled", i);
    }
    const double ns = NsPerOp(kPrimitiveOps, timer.Seconds());
    std::printf("null ScopedSpan       %8.2f ns/op\n", ns);
    record.values.emplace_back("null_scoped_span_ns_per_op", ns);
    if (ns > kNullOpCeilingNs) {
      std::printf("!! null ScopedSpan %.2f ns/op exceeds the %.0f ns ceiling\n",
                  ns, kNullOpCeilingNs);
      ok = false;
    }
  }

  // -- recording path: reported, not gated ---------------------------------
  obs::TraceRecorder recorder(4096);
  obs::TraceContext live_ctx{Launder(&recorder), 42};
  {
    const WallTimer timer;
    for (uint64_t i = 0; i < kPrimitiveOps; ++i) {
      live_ctx.Emit("bench.record", i, 1, i);
    }
    const double ns = NsPerOp(kPrimitiveOps, timer.Seconds());
    std::printf("ring Record           %8.2f ns/op  (reported only)\n", ns);
    record.values.emplace_back("record_ns_per_op", ns);
  }
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench_total", "bench");
  obs::Histogram* histogram = registry.GetHistogram("bench_seconds", "bench");
  {
    const WallTimer timer;
    for (uint64_t i = 0; i < kPrimitiveOps; ++i) {
      Launder(counter)->Increment();
    }
    const double ns = NsPerOp(kPrimitiveOps, timer.Seconds());
    std::printf("Counter::Increment    %8.2f ns/op  (reported only)\n", ns);
    record.values.emplace_back("counter_ns_per_op", ns);
  }
  {
    const WallTimer timer;
    for (uint64_t i = 0; i < kPrimitiveOps; ++i) {
      Launder(histogram)->Observe(i);
    }
    const double ns = NsPerOp(kPrimitiveOps, timer.Seconds());
    std::printf("Histogram::Observe    %8.2f ns/op  (reported only)\n", ns);
    record.values.emplace_back("histogram_observe_ns_per_op", ns);
  }
  records.push_back(std::move(record));
  return ok;
}

bool RunEndToEnd(std::vector<JsonRecord>& records) {
  bool ok = true;
  const BipartiteGraph graph =
      ChungLuBipartite(2500, 1800, 22000, 0.85, 0.85, 1001);
  obs::TraceRecorder recorder(4096);

  // Untraced first, then traced: identical options except the context.
  TipOptions untraced_options = BaseOptions();
  const TipResult untraced = ReceiptDecompose(graph, untraced_options);

  TipOptions traced_options = BaseOptions();
  traced_options.trace = obs::TraceContext{&recorder, 7};
  const TipResult traced = ReceiptDecompose(graph, traced_options);

  if (!SameResults(untraced, traced)) {
    std::printf("!! traced run is not bit-identical to the untraced run\n");
    ok = false;
  }
  if (recorder.recorded() == 0) {
    std::printf("!! traced run recorded no spans — the plumbing is dead\n");
    ok = false;
  }

  // Wall-time medians over several runs, reported only.
  constexpr int kRuns = 5;
  const auto median_seconds = [&graph](const TipOptions& base) {
    std::vector<double> seconds;
    for (int run = 0; run < kRuns; ++run) {
      TipOptions options = base;
      seconds.push_back(ReceiptDecompose(graph, options).stats.seconds_total);
    }
    std::sort(seconds.begin(), seconds.end());
    return seconds[kRuns / 2];
  };
  const double untraced_median = median_seconds(untraced_options);
  const double traced_median = median_seconds(traced_options);
  std::printf(
      "end-to-end medians    untraced=%.4fs traced=%.4fs ratio=%.3f "
      "(reported only)  spans_recorded=%llu\n",
      untraced_median, traced_median,
      untraced_median == 0.0 ? 0.0 : traced_median / untraced_median,
      static_cast<unsigned long long>(recorder.recorded()));

  JsonRecord record;
  record.name = "end_to_end";
  record.counters.emplace_back("spans_recorded", recorder.recorded());
  record.counters.emplace_back("bit_identical", ok ? 1 : 0);
  record.values.emplace_back("untraced_median_seconds", untraced_median);
  record.values.emplace_back("traced_median_seconds", traced_median);
  AppendPeelStats(traced.stats, &record);
  records.push_back(std::move(record));
  return ok;
}

int Main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  PrintHeader(
      "observability micro-bench — null-sink TraceContext cost and "
      "traced-vs-untraced bit-identicality");

  std::vector<JsonRecord> records;
  bool ok = RunPrimitiveCosts(records);
  ok = RunEndToEnd(records) && ok;

  PrintRule();
  std::printf("verdict: %s\n", ok ? "OK" : "FAILED");
  if (!json_path.empty()) {
    if (!WriteBenchJson(json_path, "obs_micro", records)) ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) { return receipt::bench::Main(argc, argv); }
