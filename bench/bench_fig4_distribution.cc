// Reproduces Fig. 4: cumulative tip-number distribution of the Trackers
// dataset (TrU and TrV analogues) — the percentage of vertices with
// θ_u ≤ θ at logarithmically spaced thresholds, demonstrating that although
// θ_max is extreme, almost all vertices have tiny tip numbers.

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <vector>

#include "bench_common.h"

namespace receipt::bench {
namespace {

struct Series {
  std::vector<std::pair<Count, double>> points;  // (θ, % vertices ≤ θ)
  Count theta_max = 0;
  double pct_below_small_fraction = 0;  // % below θ_max/3700 (paper: 99.98%)
};

std::map<std::string, Series>& AllSeries() {
  static auto& series = *new std::map<std::string, Series>();
  return series;
}

void Distribution(benchmark::State& state, const Target& target) {
  const BipartiteGraph& g = Dataset(target.dataset);
  TipOptions options;
  options.side = target.side;
  options.num_threads = DefaultThreads();
  options.num_partitions = DefaultPartitions();
  Series series;
  for (auto _ : state) {
    const TipResult r = ReceiptDecompose(g, options);
    const auto histogram = TipHistogram(r.tip_numbers);
    const double total = static_cast<double>(r.tip_numbers.size());
    series.theta_max = r.MaxTipNumber();
    // Log-spaced thresholds 1, 10, 100, … up to θ_max.
    std::vector<Count> thresholds = {0};
    for (Count t = 1; t <= series.theta_max; t *= 10) {
      thresholds.push_back(t);
    }
    thresholds.push_back(series.theta_max);
    series.points.clear();
    for (const Count threshold : thresholds) {
      uint64_t below = 0;
      for (const auto& [value, count] : histogram) {
        if (value <= threshold) below += count;
      }
      series.points.emplace_back(threshold, 100.0 * below / total);
    }
    // The paper's observation: 99.98% of TrU vertices lie below 0.027% of
    // θ_max. Evaluate the same fraction.
    const Count small = static_cast<Count>(series.theta_max * 0.00027) + 1;
    uint64_t below = 0;
    for (const auto& [value, count] : histogram) {
      if (value < small) below += count;
    }
    series.pct_below_small_fraction = 100.0 * below / total;
  }
  state.counters["theta_max"] = static_cast<double>(series.theta_max);
  AllSeries()[target.label] = series;
}

void PrintTable() {
  PrintHeader(
      "Fig. 4 reproduction — cumulative tip-number distribution (Trackers "
      "analogue)");
  for (const auto& [label, series] : AllSeries()) {
    std::printf("%s cumulative distribution (theta_max = %llu):\n",
                label.c_str(),
                static_cast<unsigned long long>(series.theta_max));
    std::printf("  %14s  %10s\n", "theta", "% <= theta");
    for (const auto& [threshold, pct] : series.points) {
      std::printf("  %14llu  %9.2f%%\n",
                  static_cast<unsigned long long>(threshold), pct);
    }
    std::printf(
        "  %% vertices with theta < 0.027%% of max: %.2f%% (paper TrU: "
        "99.98%%)\n\n",
        series.pct_below_small_fraction);
  }
}

std::vector<JsonRecord> CollectRecords() {
  std::vector<JsonRecord> records;
  for (const auto& [label, series] : AllSeries()) {
    JsonRecord record;
    record.name = label;
    record.counters.emplace_back("theta_max", series.theta_max);
    record.values.emplace_back("pct_below_small_fraction",
                               series.pct_below_small_fraction);
    for (const auto& [threshold, pct] : series.points) {
      record.values.emplace_back("pct_leq_" + std::to_string(threshold),
                                 pct);
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) {
  const std::string json_path = receipt::bench::ConsumeJsonFlag(&argc, argv);
  for (const receipt::bench::Target& target : receipt::bench::AllTargets()) {
    if (target.dataset != "tr") continue;  // Fig. 4 is Trackers only
    benchmark::RegisterBenchmark(
        ("Fig4/" + target.label).c_str(),
        [target](benchmark::State& state) {
          receipt::bench::Distribution(state, target);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintTable();
  if (!json_path.empty() &&
      !receipt::bench::WriteBenchJson(json_path, "fig4_distribution",
                                      receipt::bench::CollectRecords())) {
    return 1;
  }
  return 0;
}
