// Implementation ablation from §5.1: "In RECEIPT FD and sequential BUP, we
// use a k-way min-heap for efficient retrieval of minimum support vertices.
// We found it to be faster in practice than the bucketing structure of [51]
// or fibonacci heaps." This bench times BUP and RECEIPT with all three
// extraction backends (4-ary lazy heap / Julienne buckets / pairing heap).

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace receipt::bench {
namespace {

const char* KindName(MinExtraction kind) {
  switch (kind) {
    case MinExtraction::kDAryHeap:
      return "4ary_heap";
    case MinExtraction::kBucketQueue:
      return "buckets";
    case MinExtraction::kPairingHeap:
      return "pairing";
  }
  return "?";
}

struct Cell {
  double t_bup = 0;
  double t_receipt_fd = 0;
};

std::map<std::string, std::map<MinExtraction, Cell>>& Rows() {
  static auto& rows =
      *new std::map<std::string, std::map<MinExtraction, Cell>>();
  return rows;
}

void Ablation(benchmark::State& state, const Target& target,
              MinExtraction kind) {
  const BipartiteGraph& g = Dataset(target.dataset);
  TipOptions options;
  options.side = target.side;
  options.num_threads = DefaultThreads();
  options.num_partitions = DefaultPartitions();
  options.min_extraction = kind;
  Cell cell;
  for (auto _ : state) {
    cell.t_bup = BupDecompose(g, options).stats.seconds_total;
    cell.t_receipt_fd = ReceiptDecompose(g, options).stats.seconds_fd;
  }
  state.counters["t_bup_s"] = cell.t_bup;
  state.counters["t_receipt_fd_s"] = cell.t_receipt_fd;
  Rows()[target.label][kind] = cell;
}

void PrintTable() {
  PrintHeader(
      "Extraction-structure ablation (§5.1): BUP total / RECEIPT FD time "
      "per backend");
  std::printf("%-5s |", "tgt");
  for (const MinExtraction kind :
       {MinExtraction::kDAryHeap, MinExtraction::kBucketQueue,
        MinExtraction::kPairingHeap}) {
    std::printf(" %10s-BUP %10s-FD |", KindName(kind), KindName(kind));
  }
  std::printf("\n");
  PrintRule();
  for (const auto& [label, cells] : Rows()) {
    std::printf("%-5s |", label.c_str());
    for (const MinExtraction kind :
         {MinExtraction::kDAryHeap, MinExtraction::kBucketQueue,
          MinExtraction::kPairingHeap}) {
      const Cell& c = cells.at(kind);
      std::printf(" %14.3f %13.3f |", c.t_bup, c.t_receipt_fd);
    }
    std::printf("\n");
  }
  PrintRule();
  std::printf(
      "paper claim: the k-way min-heap outperforms bucketing and "
      "fibonacci-class heaps for this access pattern.\n\n");
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) {
  for (const receipt::bench::Target& target : receipt::bench::AllTargets()) {
    if (target.side != receipt::Side::kU) continue;  // the expensive sides
    for (const receipt::MinExtraction kind :
         {receipt::MinExtraction::kDAryHeap,
          receipt::MinExtraction::kBucketQueue,
          receipt::MinExtraction::kPairingHeap}) {
      benchmark::RegisterBenchmark(
          ("Extraction/" + target.label + "/" +
           receipt::bench::KindName(kind))
              .c_str(),
          [target, kind](benchmark::State& state) {
            receipt::bench::Ablation(state, target, kind);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintTable();
  return 0;
}
