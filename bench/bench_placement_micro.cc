// Placement micro-benchmark: cost-model-guided partition placement (LPT
// over the coarse histogram's predicted per-range peel costs) against the
// round-robin baseline, on a skewed (Chung–Lu) and a uniform generator
// graph, with the FD scheduler forced onto virtual nodes so the comparison
// runs on any machine — single-node CI included.
//
// Two layers are measured:
//
//  * Cost-model level: the CD run's predicted_costs are assigned to nodes
//    by AssignLpt and AssignRoundRobin directly; predicted makespan (max
//    per-node cost sum) and migration pressure (Σ overload above the
//    balanced average — the deterministic cross-node-traffic proxy) are
//    compared plan against plan.
//  * End-to-end: full ReceiptDecompose runs with fd_assignment = kCostLpt
//    vs kRoundRobin on the same forced node count; measured makespan is
//    stats.makespan_measured — wedges actually traversed per *assigned*
//    node, a deterministic work-unit gauge independent of stealing order.
//
// Exits non-zero unless, on the skewed generator with multiple forced
// nodes:
//  * LPT's predicted makespan is strictly below round-robin's, at both the
//    plan level and as reported by the end-to-end runs,
//  * LPT's measured makespan is strictly below round-robin's,
//  * LPT's migration pressure does not exceed round-robin's, and
//  * every configuration (assignment rule × pinning × auto topology) is
//    bit-identical: same tip numbers, bounds, subsets, subset_of.
// The uniform generator and the auto-topology (single-node fallback) runs
// are reported but not gated — on one node every assignment is the same
// assignment. `--json <path>` emits the records as a BENCH_placement_micro
// trajectory file. Plain executable (no google-benchmark): deterministic
// single-pass runs are what the counters need.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/cost_model.h"
#include "tip/receipt_cd.h"

namespace receipt::bench {
namespace {

/// Virtual node count forced onto the FD scheduler: enough bins that
/// round-robin's order-blind dealing visibly misbalances the skewed range
/// costs, small enough that every bin still receives several partitions.
constexpr int kForcedNodes = 4;

TipOptions BaseOptions() {
  TipOptions options;
  options.num_threads = DefaultThreads();
  options.num_partitions = DefaultPartitions();
  // Deterministic direction decisions, as in the other gated micro-benches:
  // the counters are the gate, and the measured-cost default is
  // timing-dependent.
  options.frontier_switch = FrontierSwitch::kFixedDensity;
  return options;
}

struct EndToEnd {
  const char* name;
  engine::PlacementAssign assign;
  int nodes;  // 0 = auto topology (single-node fallback on most CI)
  bool pin;
};

bool SameResults(const TipResult& a, const TipResult& b) {
  return a.tip_numbers == b.tip_numbers && a.range_bounds == b.range_bounds &&
         a.subset_of == b.subset_of && a.subsets == b.subsets;
}

bool RunGraph(const char* graph_name, const BipartiteGraph& graph, bool gate,
              std::vector<JsonRecord>& records) {
  bool ok = true;

  // -- cost-model level: plans straight from the CD prediction -------------
  TipOptions cd_options = BaseOptions();
  PeelStats cd_stats;
  const CdResult cd = ReceiptCd(graph, cd_options, &cd_stats);
  // With no more partitions than nodes every assignment rule produces the
  // same one-partition-per-node plan, so a strict improvement is impossible
  // by construction (e.g. a RECEIPT_BENCH_PARTITIONS=1 probe). Report, but
  // do not gate.
  if (gate && cd.predicted_costs.size() <= kForcedNodes) {
    std::printf(
        "%-8s only %zu partitions on %d nodes — placement cannot differ; "
        "gate skipped\n",
        graph_name, cd.predicted_costs.size(), kForcedNodes);
    gate = false;
  }
  const engine::PlacementPlan lpt_plan =
      engine::AssignLpt(cd.predicted_costs, kForcedNodes);
  const engine::PlacementPlan rr_plan =
      engine::AssignRoundRobin(cd.predicted_costs, kForcedNodes);
  std::printf(
      "%-8s plan   lpt: makespan=%-10llu pressure=%-8llu   rr: "
      "makespan=%-10llu pressure=%-8llu\n",
      graph_name, static_cast<unsigned long long>(lpt_plan.Makespan()),
      static_cast<unsigned long long>(lpt_plan.MigrationPressure()),
      static_cast<unsigned long long>(rr_plan.Makespan()),
      static_cast<unsigned long long>(rr_plan.MigrationPressure()));
  JsonRecord plan_record;
  plan_record.name = std::string(graph_name) + "/plan";
  plan_record.counters.emplace_back("num_subsets", cd.subsets.size());
  plan_record.counters.emplace_back("lpt_makespan", lpt_plan.Makespan());
  plan_record.counters.emplace_back("rr_makespan", rr_plan.Makespan());
  plan_record.counters.emplace_back("lpt_pressure",
                                    lpt_plan.MigrationPressure());
  plan_record.counters.emplace_back("rr_pressure",
                                    rr_plan.MigrationPressure());
  records.push_back(std::move(plan_record));

  if (gate && lpt_plan.Makespan() >= rr_plan.Makespan()) {
    std::printf(
        "!! %s: LPT predicted makespan %llu, expected strictly below "
        "round-robin's %llu\n",
        graph_name, static_cast<unsigned long long>(lpt_plan.Makespan()),
        static_cast<unsigned long long>(rr_plan.Makespan()));
    ok = false;
  }
  if (gate && lpt_plan.MigrationPressure() > rr_plan.MigrationPressure()) {
    std::printf(
        "!! %s: LPT migration pressure %llu exceeds round-robin's %llu\n",
        graph_name,
        static_cast<unsigned long long>(lpt_plan.MigrationPressure()),
        static_cast<unsigned long long>(rr_plan.MigrationPressure()));
    ok = false;
  }

  // -- end to end: the FD scheduler under each placement ------------------
  const EndToEnd configs[] = {
      {"lpt", engine::PlacementAssign::kCostLpt, kForcedNodes, false},
      {"rr", engine::PlacementAssign::kRoundRobin, kForcedNodes, false},
      {"lpt-pin", engine::PlacementAssign::kCostLpt, kForcedNodes, true},
      {"auto", engine::PlacementAssign::kCostLpt, 0, false},
  };
  std::vector<TipResult> results;
  for (const EndToEnd& config : configs) {
    TipOptions options = BaseOptions();
    options.fd_assignment = config.assign;
    options.placement_nodes = config.nodes;
    options.pin_numa = config.pin;
    TipResult r = ReceiptDecompose(graph, options);
    std::printf(
        "%-8s %-8s nodes=%-2llu makespan: predicted=%-10llu "
        "measured=%-10llu local=%-4llu steals=%-4llu fd=%.3fs\n",
        graph_name, config.name,
        static_cast<unsigned long long>(r.stats.placement_nodes),
        static_cast<unsigned long long>(r.stats.makespan_predicted),
        static_cast<unsigned long long>(r.stats.makespan_measured),
        static_cast<unsigned long long>(r.stats.placement_local_pops),
        static_cast<unsigned long long>(r.stats.placement_remote_steals),
        r.stats.seconds_fd);
    JsonRecord record;
    record.name = std::string(graph_name) + "/" + config.name;
    AppendPeelStats(r.stats, &record);
    records.push_back(std::move(record));
    results.push_back(std::move(r));
  }
  const TipResult& lpt = results[0];
  const TipResult& rr = results[1];

  for (size_t i = 1; i < results.size(); ++i) {
    if (!SameResults(results[0], results[i])) {
      std::printf(
          "!! %s: configuration '%s' is not bit-identical to '%s'\n",
          graph_name, configs[i].name, configs[0].name);
      ok = false;
    }
  }
  if (gate) {
    if (lpt.stats.makespan_predicted >= rr.stats.makespan_predicted) {
      std::printf(
          "!! %s: end-to-end LPT predicted makespan %llu, expected "
          "strictly below round-robin's %llu\n",
          graph_name,
          static_cast<unsigned long long>(lpt.stats.makespan_predicted),
          static_cast<unsigned long long>(rr.stats.makespan_predicted));
      ok = false;
    }
    if (lpt.stats.makespan_measured >= rr.stats.makespan_measured) {
      std::printf(
          "!! %s: LPT measured makespan %llu wedge-units, expected "
          "strictly below round-robin's %llu\n",
          graph_name,
          static_cast<unsigned long long>(lpt.stats.makespan_measured),
          static_cast<unsigned long long>(rr.stats.makespan_measured));
      ok = false;
    }
  }
  return ok;
}

int Main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  PrintHeader(
      "placement micro-bench — cost-model-guided LPT node assignment vs "
      "round-robin, bit-identical by construction");

  // Skewed: heavy-tailed degrees concentrate predicted cost in a few
  // ranges — exactly where order-blind round-robin piles heavy partitions
  // onto one node. Uniform: flat costs, round-robin's best case, reported
  // but not gated.
  std::vector<std::pair<const char*, BipartiteGraph>> graphs;
  graphs.emplace_back("skewed",
                      ChungLuBipartite(2500, 1800, 22000, 0.85, 0.85, 1001));
  graphs.emplace_back("uniform", RandomBipartite(2500, 1800, 22000, 1003));

  std::vector<JsonRecord> records;
  bool ok = true;
  for (const auto& [name, graph] : graphs) {
    const bool gate = std::string(name) == "skewed";
    ok = RunGraph(name, graph, gate, records) && ok;
  }
  PrintRule();
  std::printf("verdict: %s\n", ok ? "OK" : "FAILED");
  if (!json_path.empty()) {
    if (!WriteBenchJson(json_path, "placement_micro", records)) ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) { return receipt::bench::Main(argc, argv); }
