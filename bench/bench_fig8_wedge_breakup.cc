// Reproduces Fig. 8: percentage of wedge traversal attributable to each
// RECEIPT step — CD peeling, FD, and pvBcnt counting — per dataset × side.
// The paper's shape: CD dominates, FD stays below ~15%.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace receipt::bench {
namespace {

std::map<std::string, PeelStats>& Rows() {
  static auto& rows = *new std::map<std::string, PeelStats>();
  return rows;
}

void Breakup(benchmark::State& state, const Target& target) {
  PeelStats stats;
  for (auto _ : state) {
    stats = RunReceiptAblation(target, AblationConfig::kFull);
  }
  state.counters["wedges_cd"] = static_cast<double>(stats.wedges_cd);
  state.counters["wedges_fd"] = static_cast<double>(stats.wedges_fd);
  state.counters["wedges_cnt"] = static_cast<double>(stats.wedges_counting);
  Rows()[target.label] = stats;
}

void PrintTable() {
  PrintHeader(
      "Fig. 8 reproduction — breakup of wedges traversed per RECEIPT step");
  std::printf("%-5s | %12s %12s %12s | %7s %7s %7s\n", "tgt", "CD", "FD",
              "pvBcnt", "%CD", "%FD", "%cnt");
  PrintRule();
  double max_fd_pct = 0;
  for (const Target& target : AllTargets()) {
    const PeelStats& s = Rows()[target.label];
    const double total = static_cast<double>(s.TotalWedges());
    const double pct_cd = 100.0 * static_cast<double>(s.wedges_cd) / total;
    const double pct_fd = 100.0 * static_cast<double>(s.wedges_fd) / total;
    const double pct_cnt =
        100.0 * static_cast<double>(s.wedges_counting) / total;
    max_fd_pct = std::max(max_fd_pct, pct_fd);
    std::printf("%-5s | %12llu %12llu %12llu | %6.1f%% %6.1f%% %6.1f%%\n",
                target.label.c_str(),
                static_cast<unsigned long long>(s.wedges_cd),
                static_cast<unsigned long long>(s.wedges_fd),
                static_cast<unsigned long long>(s.wedges_counting), pct_cd,
                pct_fd, pct_cnt);
  }
  PrintRule();
  std::printf(
      "max FD share observed: %.1f%% (paper Fig. 8: FD < 15%% "
      "everywhere)\n\n",
      max_fd_pct);
}

std::vector<JsonRecord> CollectRecords() {
  std::vector<JsonRecord> records;
  for (const auto& [label, stats] : Rows()) {
    JsonRecord record;
    record.name = label;
    AppendPeelStats(stats, &record);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) {
  const std::string json_path = receipt::bench::ConsumeJsonFlag(&argc, argv);
  for (const receipt::bench::Target& target : receipt::bench::AllTargets()) {
    benchmark::RegisterBenchmark(
        ("Fig8/" + target.label).c_str(),
        [target](benchmark::State& state) {
          receipt::bench::Breakup(state, target);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintTable();
  if (!json_path.empty() &&
      !receipt::bench::WriteBenchJson(json_path, "fig8_wedge_breakup",
                                      receipt::bench::CollectRecords())) {
    return 1;
  }
  return 0;
}
