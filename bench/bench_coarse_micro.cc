// Coarse-step micro-benchmark: the output-sensitive SupportIndex path
// (histogram range bounds + delta-patched ⊲⊳init) against the legacy scan
// path (per-range O(n) alive filter + selection, per-range O(n) ⊲⊳init
// snapshot, O(n)-per-round active rebuilds) on a skewed (Chung–Lu) and a
// uniform generator graph, for the tip coarse step (plain and HUC+DGM) and
// the RECEIPT-W wing coarse step, across thread counts.
//
// Verifies, and exits non-zero unless:
//  * the RangeResult (bounds, subsets, subset_of, init_support) is
//    bit-identical between the indexed and scan paths for every algorithm
//    and thread count tested, and
//  * on the skewed generator, the indexed path's examined-element count
//    (bound_walk_buckets + init_patch_elements + histogram_refines, plus
//    index_rebuild_elements and index_active_elements for honesty about
//    re-count rebuilds and index-built active sets) is strictly below the
//    scan path's active_scan_elements — the output-sensitivity claim, per
//    algorithm and thread count.
//
// `--json <path>` additionally emits the records as a BENCH_coarse_micro
// trajectory file. Plain executable (no google-benchmark): deterministic
// single-pass runs are what the element counters need.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "tip/receipt_cd.h"

namespace receipt::bench {
namespace {

uint64_t IndexedExamined(const PeelStats& s) {
  return s.bound_walk_buckets + s.init_patch_elements + s.histogram_refines +
         s.index_rebuild_elements + s.index_active_elements;
}

void Report(const char* graph, const char* algo, const char* path,
            int threads, const PeelStats& s,
            std::vector<JsonRecord>& records) {
  std::printf(
      "%-8s %-8s %-8s t=%-2d scan_elements=%-9llu walk=%-7llu patch=%-8llu "
      "refine=%-6llu rebuild=%-7llu cd=%.3fs\n",
      graph, algo, path, threads,
      static_cast<unsigned long long>(s.active_scan_elements),
      static_cast<unsigned long long>(s.bound_walk_buckets),
      static_cast<unsigned long long>(s.init_patch_elements),
      static_cast<unsigned long long>(s.histogram_refines),
      static_cast<unsigned long long>(s.index_rebuild_elements),
      s.seconds_cd);
  JsonRecord record;
  record.name = std::string(graph) + "/" + algo + "/" + path + "/t" +
                std::to_string(threads);
  record.counters.emplace_back("indexed_examined", IndexedExamined(s));
  AppendPeelStats(s, &record);
  records.push_back(std::move(record));
}

/// One indexed-vs-scan comparison; returns false on an equivalence or
/// (when `gate_elements`) an output-sensitivity violation.
template <typename RunFn, typename ResultT>
bool Compare(const char* graph, const char* algo, int threads,
             bool gate_elements, RunFn&& run, ResultT* /*tag*/,
             std::vector<JsonRecord>& records) {
  PeelStats scan_stats;
  const ResultT scan = run(/*use_index=*/false, &scan_stats);
  PeelStats indexed_stats;
  const ResultT indexed = run(/*use_index=*/true, &indexed_stats);
  Report(graph, algo, "scan", threads, scan_stats, records);
  Report(graph, algo, "indexed", threads, indexed_stats, records);

  bool ok = true;
  if (scan.bounds != indexed.bounds || scan.subsets != indexed.subsets ||
      scan.subset_of != indexed.subset_of ||
      scan.init_support != indexed.init_support ||
      scan.predicted_costs != indexed.predicted_costs) {
    std::printf("!! %s/%s t=%d: RangeResult differs between indexed and "
                "scan coarse paths\n",
                graph, algo, threads);
    ok = false;
  }
  // Degenerate configurations (e.g. RECEIPT_BENCH_PARTITIONS=1) produce a
  // single range — there is no per-range repetition for the index to save,
  // and the one-off rebuild dominates. The strict check applies whenever
  // multiple ranges actually ran (always true for the default partition
  // count); equivalence is asserted regardless.
  if (gate_elements && indexed_stats.num_subsets > 1 &&
      IndexedExamined(indexed_stats) >= scan_stats.active_scan_elements) {
    std::printf(
        "!! %s/%s t=%d: indexed path examined %llu elements "
        "(walk+patch+refine+rebuild), expected strictly fewer than the "
        "scan path's %llu active_scan_elements\n",
        graph, algo, threads,
        static_cast<unsigned long long>(IndexedExamined(indexed_stats)),
        static_cast<unsigned long long>(scan_stats.active_scan_elements));
    ok = false;
  }
  return ok;
}

int Main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  PrintHeader(
      "coarse micro-bench — SupportIndex (histogram bounds + ⊲⊳init "
      "patches) vs per-range scans, bit-identical by construction");

  struct MicroGraph {
    const char* name;
    bool gate;  // the strict element gate applies to the skewed shape only
    BipartiteGraph graph;
  };
  // Skewed: heavy-tailed degrees — many ranges, long tails, small deltas —
  // where per-range O(n) work is pure overhead. Uniform: the scan path's
  // best case, reported but not gated.
  std::vector<MicroGraph> tip_graphs;
  tip_graphs.push_back(
      {"skewed", true, ChungLuBipartite(2500, 1800, 22000, 0.85, 0.85, 1001)});
  tip_graphs.push_back(
      {"uniform", false, RandomBipartite(2500, 1800, 22000, 1003)});
  std::vector<MicroGraph> wing_graphs;
  wing_graphs.push_back(
      {"skewed", true, ChungLuBipartite(500, 350, 4000, 0.8, 0.8, 1005)});
  wing_graphs.push_back(
      {"uniform", false, RandomBipartite(500, 350, 4000, 1007)});

  const int thread_counts[] = {1, DefaultThreads()};
  std::vector<JsonRecord> records;
  bool ok = true;

  for (const MicroGraph& mg : tip_graphs) {
    for (const int threads : thread_counts) {
      for (const bool optimized : {false, true}) {
        const char* algo = optimized ? "tip-hucdgm" : "tip-plain";
        TipOptions options;
        options.num_threads = threads;
        options.num_partitions = DefaultPartitions();
        options.use_huc = optimized;
        options.use_dgm = optimized;
        // Deterministic direction decisions — the element counters are
        // the gate, and the measured-cost default is timing-dependent.
        options.frontier_switch = FrontierSwitch::kFixedDensity;
        const auto run = [&](bool use_index, PeelStats* stats) {
          TipOptions o = options;
          o.use_support_index = use_index;
          return ReceiptCd(mg.graph, o, stats);
        };
        ok = Compare(mg.name, algo, threads, mg.gate, run,
                     static_cast<CdResult*>(nullptr), records) &&
             ok;
      }
    }
  }
  for (const MicroGraph& mg : wing_graphs) {
    for (const int threads : thread_counts) {
      ReceiptWingOptions options;
      options.num_threads = threads;
      options.num_partitions = 8;
      options.frontier_switch = FrontierSwitch::kFixedDensity;
      const auto run = [&](bool use_index, PeelStats* stats) {
        ReceiptWingOptions o = options;
        o.use_support_index = use_index;
        return ReceiptWingCoarse(mg.graph, o, stats);
      };
      ok = Compare(mg.name, "wing", threads, mg.gate, run,
                   static_cast<engine::RangeResult<EdgeOffset>*>(nullptr),
                   records) &&
           ok;
    }
  }

  PrintRule();
  std::printf("verdict: %s\n", ok ? "OK" : "FAILED");
  if (!json_path.empty()) {
    if (!WriteBenchJson(json_path, "coarse_micro", records)) ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) { return receipt::bench::Main(argc, argv); }
