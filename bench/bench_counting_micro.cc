// Micro-benchmarks for the per-vertex butterfly counting kernel (Alg. 1,
// §2.1): throughput across graph shapes, thread counts and skew levels,
// using google-benchmark's repeated-iteration timing (unlike the
// single-shot table benches).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace receipt::bench {
namespace {

void BM_CountAnalogue(benchmark::State& state, const std::string& name,
                      int threads) {
  const BipartiteGraph& g = Dataset(name);
  uint64_t wedges = 0;
  for (auto _ : state) {
    wedges = 0;
    benchmark::DoNotOptimize(CountButterflies(g, threads, &wedges));
  }
  state.counters["wedges"] = static_cast<double>(wedges);
  state.counters["wedges_per_s"] = benchmark::Counter(
      static_cast<double>(wedges), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["edges"] = static_cast<double>(g.num_edges());
}

void BM_CountSkewSweep(benchmark::State& state) {
  const double alpha = static_cast<double>(state.range(0)) / 10.0;
  const BipartiteGraph g =
      ChungLuBipartite(20000, 5000, 60000, 0.4, alpha, 777);
  uint64_t wedges = 0;
  for (auto _ : state) {
    wedges = 0;
    benchmark::DoNotOptimize(CountButterflies(g, 1, &wedges));
  }
  // The vertex-priority bound Σ min(d_u, d_v) should keep traversal nearly
  // flat even as the raw wedge count explodes with skew.
  state.counters["wedges_traversed"] = static_cast<double>(wedges);
  state.counters["wedges_raw"] =
      static_cast<double>(g.TotalWedges(Side::kU));
  state.counters["priority_bound"] =
      static_cast<double>(g.CountingCostBound());
}

void BM_PerEdgeCount(benchmark::State& state, const std::string& name) {
  const BipartiteGraph& g = Dataset(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PerEdgeButterflyCount(g, 1));
  }
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) {
  using receipt::bench::BM_CountAnalogue;
  for (const std::string& name : receipt::PaperAnalogueNames()) {
    for (const int threads : {1, 4}) {
      benchmark::RegisterBenchmark(
          ("Counting/" + name + "/T" + std::to_string(threads)).c_str(),
          [name, threads](benchmark::State& state) {
            BM_CountAnalogue(state, name, threads);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (const int alpha_tenths : {0, 4, 8, 10}) {
    benchmark::RegisterBenchmark(
        ("CountingSkew/alpha_0." + std::to_string(alpha_tenths)).c_str(),
        receipt::bench::BM_CountSkewSweep)
        ->Arg(alpha_tenths)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark(
      "PerEdgeCounting/lj",
      [](benchmark::State& state) {
        receipt::bench::BM_PerEdgeCount(state, "lj");
      })
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
