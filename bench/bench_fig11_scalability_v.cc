// Reproduces Fig. 11: parallel speedup of RECEIPT when peeling vertex set V
// with 1…36 threads on every dataset.

#include "bench_scalability_common.h"

int main(int argc, char** argv) {
  receipt::bench::RegisterScalabilityBenchmarks("Fig11", receipt::Side::kV);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintScalabilityTable("Fig. 11", receipt::Side::kV);
  return 0;
}
