// Reproduces Fig. 11: parallel speedup of RECEIPT when peeling vertex set V
// with 1…36 threads on every dataset. `--json <path>` emits the series as a
// trajectory file.

#include "bench_scalability_common.h"

int main(int argc, char** argv) {
  const std::string json_path = receipt::bench::ConsumeJsonFlag(&argc, argv);
  receipt::bench::RegisterScalabilityBenchmarks("Fig11", receipt::Side::kV);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintScalabilityTable("Fig. 11", receipt::Side::kV);
  if (!json_path.empty()) {
    receipt::bench::WriteScalabilityJson(json_path, "Fig11");
  }
  return 0;
}
