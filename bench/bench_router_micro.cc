// Router micro-benchmark: the per-request overhead the cluster router
// adds on top of a replica answering a cache-hit decompose. The router is
// one extra loopback HTTP hop (parse, ring lookup, forward, relay), so
// its tax must stay small against the sub-millisecond cache-hit path it
// fronts — this bench keeps that visible and gated.
//
// Gate (exit non-zero on violation): mean routed latency may exceed mean
// direct latency by at most a fixed 5ms budget, and the routed responses
// must be byte-identical in their decomposition numbers to the direct
// ones (the router relays, never rewrites).
//
// `--json <path>` emits both latency profiles as a BENCH_router_micro
// trajectory file. Plain executable: wall-clock means over hundreds of
// loopback requests are stable enough without a harness.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/http_client.h"
#include "cluster/node.h"
#include "cluster/router.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "server/decomposition_http.h"
#include "server/http_server.h"
#include "service/decomposition_service.h"
#include "service/graph_registry.h"
#include "util/timer.h"

namespace receipt::bench {
namespace {

constexpr size_t kWarmup = 20;
constexpr size_t kRequests = 300;
constexpr double kOverheadBudgetSeconds = 5e-3;

constexpr const char* kDecomposeBody =
    "{\"graph\":\"g\",\"kind\":\"tip-U\",\"partitions\":8}";

struct LatencyRun {
  double mean_seconds = 0.0;
  double total_seconds = 0.0;
  std::string last_body;
};

bool DriveDecomposes(const cluster::HttpClient& client, uint16_t port,
                     size_t count, LatencyRun* run) {
  WallTimer timer;
  for (size_t i = 0; i < count; ++i) {
    cluster::HttpClientResponse response;
    std::string error;
    if (!client.Post("127.0.0.1", port, "/v1/decompose", kDecomposeBody, {},
                     &response, &error) ||
        response.status != 200) {
      std::fprintf(stderr, "decompose %zu via :%u failed: %s (HTTP %d)\n", i,
                   port, error.c_str(), response.status);
      return false;
    }
    run->last_body = std::move(response.body);
  }
  run->total_seconds = timer.Seconds();
  run->mean_seconds = run->total_seconds / static_cast<double>(count);
  return true;
}

int Main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  PrintHeader(
      "router micro-bench — per-request overhead of the cluster router on "
      "cache-hit decomposes");

  std::string root = "/tmp/receipt_bench_routerXXXXXX";
  if (::mkdtemp(root.data()) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  // A single self-owning replica behind the router: the bench measures
  // the hop, not replication, so replication_factor is 1.
  service::GraphRegistry registry;
  service::ServiceOptions service_options;
  service_options.num_workers = 2;
  service::DecompositionService service(registry, service_options);
  server::HttpServerOptions http_options;
  http_options.port = 0;
  server::HttpServer http_server(http_options);
  server::DecompositionHttpFrontend frontend(registry, service, http_server,
                                             /*register_routes=*/false);
  cluster::ClusterNodeOptions node_options;
  node_options.self_id = "a";
  node_options.members = {{"a", "127.0.0.1", 0}};
  node_options.replication_factor = 1;
  cluster::ClusterNode node(node_options, registry, service, frontend,
                            http_server);
  std::string error;
  if (!http_server.Start(&error)) {
    std::fprintf(stderr, "replica start: %s\n", error.c_str());
    return 1;
  }
  node.SetMemberEndpoint("a", "127.0.0.1", http_server.port());

  if (service.RegisterGraph("g", RandomBipartite(500, 500, 6000, /*seed=*/3),
                            nullptr, &error) != service::Status::kOk) {
    std::fprintf(stderr, "register: %s\n", error.c_str());
    return 1;
  }

  cluster::RouterOptions router_options;
  router_options.replication_factor = 1;
  router_options.health_interval_ms = 0;
  cluster::Router router({{"a", "127.0.0.1", http_server.port()}},
                         router_options);
  if (!router.Start(&error)) {
    std::fprintf(stderr, "router start: %s\n", error.c_str());
    return 1;
  }

  const cluster::HttpClient client(2000);
  bool ok = true;
  LatencyRun direct;
  LatencyRun routed;
  LatencyRun warm;
  // Warm-up populates the result cache (first request runs the engine) and
  // the page tables on both paths; everything measured after is cache-hit.
  ok = ok && DriveDecomposes(client, http_server.port(), kWarmup, &warm);
  ok = ok && DriveDecomposes(client, router.port(), kWarmup, &warm);
  ok = ok && DriveDecomposes(client, http_server.port(), kRequests, &direct);
  ok = ok && DriveDecomposes(client, router.port(), kRequests, &routed);

  std::vector<JsonRecord> records;
  double overhead = 0.0;
  bool identical = false;
  if (ok) {
    overhead = routed.mean_seconds - direct.mean_seconds;
    // The router relays the replica's body untouched, so the numbers
    // arrays must match byte for byte.
    const auto numbers_of = [](const std::string& body) {
      const size_t start = body.find("\"numbers\"");
      return start == std::string::npos ? std::string() : body.substr(start);
    };
    identical = !direct.last_body.empty() &&
                numbers_of(direct.last_body) == numbers_of(routed.last_body);
    std::printf("direct  %4zu cache-hit decomposes  mean %8.1f us\n",
                kRequests, direct.mean_seconds * 1e6);
    std::printf("routed  %4zu cache-hit decomposes  mean %8.1f us\n",
                kRequests, routed.mean_seconds * 1e6);
    std::printf("router overhead: %+.1f us/request, numbers identical: %s\n",
                overhead * 1e6, identical ? "yes" : "NO");
    const cluster::Router::Stats stats = router.stats();
    JsonRecord record;
    record.name = "cache_hit_decompose";
    record.counters = {
        {"requests", kRequests},
        {"reads_routed", stats.reads_routed},
        {"failovers", stats.failovers},
    };
    record.values = {
        {"direct_mean_seconds", direct.mean_seconds},
        {"routed_mean_seconds", routed.mean_seconds},
        {"overhead_seconds", overhead},
    };
    records.push_back(std::move(record));
  }

  PrintRule();
  const bool within_budget = ok && overhead < kOverheadBudgetSeconds;
  std::printf("gate: router overhead %.1f us vs budget %.1f us — %s\n",
              overhead * 1e6, kOverheadBudgetSeconds * 1e6,
              within_budget ? "OK" : "FAILED");
  std::printf("gate: routed numbers bit-identical to direct — %s\n",
              identical ? "OK" : "FAILED");
  ok = ok && within_budget && identical;
  std::printf("verdict: %s\n", ok ? "OK" : "FAILED");

  if (!json_path.empty()) {
    if (!WriteBenchJson(json_path, "router_micro", records)) ok = false;
  }
  router.Stop();
  http_server.Stop();
  service.Shutdown(/*drain=*/true);
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) { return receipt::bench::Main(argc, argv); }
