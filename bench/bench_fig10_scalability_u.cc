// Reproduces Fig. 10: parallel speedup of RECEIPT when peeling vertex set U
// with 1…36 threads on every dataset. `--json <path>` emits the series as a
// trajectory file.

#include "bench_scalability_common.h"

int main(int argc, char** argv) {
  const std::string json_path = receipt::bench::ConsumeJsonFlag(&argc, argv);
  receipt::bench::RegisterScalabilityBenchmarks("Fig10", receipt::Side::kU);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintScalabilityTable("Fig. 10", receipt::Side::kU);
  if (!json_path.empty()) {
    receipt::bench::WriteScalabilityJson(json_path, "Fig10");
  }
  return 0;
}
