// Reproduces Fig. 10: parallel speedup of RECEIPT when peeling vertex set U
// with 1…36 threads on every dataset.

#include "bench_scalability_common.h"

int main(int argc, char** argv) {
  receipt::bench::RegisterScalabilityBenchmarks("Fig10", receipt::Side::kU);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintScalabilityTable("Fig. 10", receipt::Side::kU);
  return 0;
}
