// Reproduces Fig. 6: wedges traversed by RECEIPT, RECEIPT- (no DGM) and
// RECEIPT-- (no DGM, no HUC), normalized to RECEIPT--, on every dataset ×
// side. High-r datasets (ItU, LjU, EnU, TrU) should show dramatic HUC
// savings; low-r V sides should show RECEIPT- ≈ RECEIPT--.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace receipt::bench {
namespace {

struct Row {
  uint64_t full = 0;      // RECEIPT
  uint64_t no_dgm = 0;    // RECEIPT-
  uint64_t neither = 0;   // RECEIPT--
};

std::map<std::string, Row>& Rows() {
  static auto& rows = *new std::map<std::string, Row>();
  return rows;
}

void Ablation(benchmark::State& state, const Target& target) {
  Row row;
  for (auto _ : state) {
    row.full = RunReceiptAblation(target, AblationConfig::kFull).TotalWedges();
    row.no_dgm =
        RunReceiptAblation(target, AblationConfig::kNoDgm).TotalWedges();
    row.neither =
        RunReceiptAblation(target, AblationConfig::kNeither).TotalWedges();
  }
  state.counters["wedges_receipt"] = static_cast<double>(row.full);
  state.counters["wedges_receipt_minus"] = static_cast<double>(row.no_dgm);
  state.counters["wedges_receipt_mm"] = static_cast<double>(row.neither);
  Rows()[target.label] = row;
}

void PrintTable() {
  PrintHeader(
      "Fig. 6 reproduction — normalized wedge traversal: RECEIPT / "
      "RECEIPT- / RECEIPT--");
  std::printf("%-5s | %12s %12s %12s | %8s %8s %8s\n", "tgt", "RECEIPT",
              "RECEIPT-", "RECEIPT--", "norm", "norm-", "norm--");
  PrintRule();
  for (const Target& target : AllTargets()) {
    const Row& r = Rows()[target.label];
    const double base = static_cast<double>(r.neither);
    std::printf("%-5s | %12llu %12llu %12llu | %8.3f %8.3f %8.3f\n",
                target.label.c_str(),
                static_cast<unsigned long long>(r.full),
                static_cast<unsigned long long>(r.no_dgm),
                static_cast<unsigned long long>(r.neither),
                static_cast<double>(r.full) / base,
                static_cast<double>(r.no_dgm) / base, 1.0);
  }
  PrintRule();
  std::printf(
      "expected shape (paper Fig. 6): norm- << 1 on high-r U sides (HUC); "
      "DGM adds up to ~1.4x further reduction.\n\n");
}

std::vector<JsonRecord> CollectRecords() {
  std::vector<JsonRecord> records;
  for (const auto& [label, r] : Rows()) {
    JsonRecord record;
    record.name = label;
    record.counters.emplace_back("wedges_receipt", r.full);
    record.counters.emplace_back("wedges_receipt_minus", r.no_dgm);
    record.counters.emplace_back("wedges_receipt_minus_minus", r.neither);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) {
  const std::string json_path = receipt::bench::ConsumeJsonFlag(&argc, argv);
  for (const receipt::bench::Target& target : receipt::bench::AllTargets()) {
    benchmark::RegisterBenchmark(
        ("Fig6/" + target.label).c_str(),
        [target](benchmark::State& state) {
          receipt::bench::Ablation(state, target);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintTable();
  if (!json_path.empty() &&
      !receipt::bench::WriteBenchJson(json_path, "fig6_optimizations_wedges",
                                      receipt::bench::CollectRecords())) {
    return 1;
  }
  return 0;
}
