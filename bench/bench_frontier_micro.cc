// Frontier-vs-scan micro-benchmark: runs the RECEIPT coarse+fine tip
// decomposition and the RECEIPT-W wing decomposition with the engine's
// active-set rebuilds forced to full scans (the pre-frontier behavior),
// forced to frontier merges, and under the default hybrid threshold, on a
// skewed (Chung–Lu) and a uniform (Erdős–Rényi-style) generator graph.
//
// Reports per-configuration rounds, total active-set elements examined and
// per-phase seconds; verifies that every configuration produces identical
// tip/wing numbers and that the frontier direction examines strictly fewer
// active-set elements than the scan direction on the skewed graph (the
// paper's Figs. 8–9 overhead argument). Exits non-zero when either check
// fails, so CI can gate on it. `--json <path>` additionally emits the
// records as a BENCH_frontier_micro trajectory file.
//
// Plain executable (no google-benchmark): deterministic single-pass runs
// are what the element counters need.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace receipt::bench {
namespace {

struct Direction {
  const char* name;
  double threshold;
};

constexpr Direction kDirections[] = {
    {"scan", 0.0},
    {"frontier", 2.0},
    {"hybrid", kDefaultFrontierDensity},
};

struct MicroGraph {
  const char* name;
  BipartiteGraph graph;
};

bool RunTip(const MicroGraph& mg, std::vector<JsonRecord>& records,
            bool expect_fewer_elements) {
  bool ok = true;
  std::vector<Count> reference;
  uint64_t scan_elements = 0;
  uint64_t frontier_elements = 0;
  uint64_t frontier_rebuilds = 0;

  for (const Direction& dir : kDirections) {
    TipOptions options;
    options.num_threads = DefaultThreads();
    options.num_partitions = DefaultPartitions();
    // Direction forcing requires the fixed-density switch; the
    // measured-cost default would override the threshold.
    options.frontier_switch = FrontierSwitch::kFixedDensity;
    options.frontier_density_threshold = dir.threshold;
    const TipResult r = ReceiptDecompose(mg.graph, options);

    if (reference.empty()) {
      reference = r.tip_numbers;
    } else if (r.tip_numbers != reference) {
      std::printf("!! %s/tip/%s: tip numbers differ from scan direction\n",
                  mg.name, dir.name);
      ok = false;
    }
    if (std::string(dir.name) == "scan") {
      scan_elements = r.stats.active_scan_elements;
    } else if (std::string(dir.name) == "frontier") {
      frontier_elements = r.stats.active_scan_elements;
      frontier_rebuilds = r.stats.frontier_rounds;
    }

    std::printf(
        "%-8s tip   %-9s rounds: frontier=%-5llu scan=%-5llu "
        "active_elements=%-10llu cd=%.3fs fd=%.3fs\n",
        mg.name, dir.name,
        static_cast<unsigned long long>(r.stats.frontier_rounds),
        static_cast<unsigned long long>(r.stats.scan_rounds),
        static_cast<unsigned long long>(r.stats.active_scan_elements),
        r.stats.seconds_cd, r.stats.seconds_fd);

    JsonRecord record;
    record.name = std::string(mg.name) + "/tip/" + dir.name;
    record.values.emplace_back("threshold", dir.threshold);
    AppendPeelStats(r.stats, &record);
    records.push_back(std::move(record));
  }

  // Degenerate configurations (e.g. RECEIPT_BENCH_PARTITIONS=1) peel each
  // range in one round — no rebuilds exist for the frontier to save, and
  // equal element counts are the correct outcome. The strict check applies
  // whenever at least one frontier rebuild actually ran (always true for
  // the default partition count).
  if (expect_fewer_elements && frontier_rebuilds > 0 &&
      frontier_elements >= scan_elements) {
    std::printf(
        "!! %s/tip: frontier direction examined %llu elements, expected "
        "strictly fewer than the scan direction's %llu\n",
        mg.name, static_cast<unsigned long long>(frontier_elements),
        static_cast<unsigned long long>(scan_elements));
    ok = false;
  }
  return ok;
}

bool RunWing(const MicroGraph& mg, std::vector<JsonRecord>& records) {
  bool ok = true;
  std::vector<Count> reference;

  for (const Direction& dir : kDirections) {
    ReceiptWingOptions options;
    options.num_threads = DefaultThreads();
    options.num_partitions = 8;
    options.frontier_switch = FrontierSwitch::kFixedDensity;
    options.frontier_density_threshold = dir.threshold;
    const WingResult r = ReceiptWingDecompose(mg.graph, options);

    if (reference.empty()) {
      reference = r.wing_numbers;
    } else if (r.wing_numbers != reference) {
      std::printf("!! %s/wing/%s: wing numbers differ from scan direction\n",
                  mg.name, dir.name);
      ok = false;
    }

    std::printf(
        "%-8s wing  %-9s rounds: frontier=%-5llu scan=%-5llu "
        "active_elements=%-10llu cd=%.3fs fd=%.3fs\n",
        mg.name, dir.name,
        static_cast<unsigned long long>(r.stats.frontier_rounds),
        static_cast<unsigned long long>(r.stats.scan_rounds),
        static_cast<unsigned long long>(r.stats.active_scan_elements),
        r.stats.seconds_cd, r.stats.seconds_fd);

    JsonRecord record;
    record.name = std::string(mg.name) + "/wing/" + dir.name;
    record.values.emplace_back("threshold", dir.threshold);
    AppendPeelStats(r.stats, &record);
    records.push_back(std::move(record));
  }
  return ok;
}

int Main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  PrintHeader(
      "frontier micro-bench — active-set rebuild direction "
      "(frontier merge vs full scan), bit-identical by construction");

  // Skewed: heavy-tailed degrees mean long peeling tails of tiny rounds —
  // exactly where per-round O(n) scans are pure overhead (Figs. 8–9).
  // Uniform: flat degrees, fat rounds, the scan direction's best case.
  std::vector<MicroGraph> tip_graphs;
  tip_graphs.push_back(
      {"skewed", ChungLuBipartite(2500, 1800, 22000, 0.85, 0.85, 1001)});
  tip_graphs.push_back({"uniform", RandomBipartite(2500, 1800, 22000, 1003)});
  // Edge peeling traverses far more state per peel, so the wing sweep uses
  // smaller graphs (the direction counters, not wall-clock, carry the
  // signal here).
  std::vector<MicroGraph> wing_graphs;
  wing_graphs.push_back(
      {"skewed", ChungLuBipartite(500, 350, 4000, 0.8, 0.8, 1005)});
  wing_graphs.push_back({"uniform", RandomBipartite(500, 350, 4000, 1007)});

  std::vector<JsonRecord> records;
  bool ok = true;
  for (const MicroGraph& mg : tip_graphs) {
    const bool is_skewed = std::string(mg.name) == "skewed";
    ok = RunTip(mg, records, /*expect_fewer_elements=*/is_skewed) && ok;
  }
  for (const MicroGraph& mg : wing_graphs) {
    ok = RunWing(mg, records) && ok;
  }
  PrintRule();
  std::printf("verdict: %s\n", ok ? "OK" : "FAILED");

  if (!json_path.empty()) {
    if (!WriteBenchJson(json_path, "frontier_micro", records)) ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) { return receipt::bench::Main(argc, argv); }
