#ifndef RECEIPT_BENCH_BENCH_COMMON_H_
#define RECEIPT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "receipt/receipt_lib.h"
#include "util/timer.h"

namespace receipt::bench {

// Benchmarks fold wedge/butterfly counters across phases and datasets; the
// paper's magnitudes (tip numbers to 3×10^12, wedges to 10^14) require
// 64-bit accumulation everywhere. Pin the type so a future narrowing of
// Count trips here instead of silently truncating bench output.
static_assert(std::is_same_v<Count, uint64_t>,
              "bench counters accumulate Count and assume 64 bits");

/// Cached access to the six paper-analogue datasets ("it" … "tr"). Graphs
/// are generated once per process.
const BipartiteGraph& Dataset(const std::string& name);

/// One decomposition target: dataset + side, labelled like the paper
/// ("ItU", "TrV", …).
struct Target {
  std::string label;
  std::string dataset;
  Side side;
};

/// All 12 targets in Table 2/3 column order.
std::vector<Target> AllTargets();

/// Thread count for "parallel" bench configurations. Defaults to 4
/// (oversubscribed on this single-core container — see EXPERIMENTS.md);
/// override with the RECEIPT_BENCH_THREADS environment variable.
int DefaultThreads();

/// Default partition count (the paper's P = 150 is tuned for graphs with
/// 10^5-10^8 wedge-heavy vertices; our scaled analogues use 30 unless a
/// bench sweeps P explicitly). Override with RECEIPT_BENCH_PARTITIONS.
int DefaultPartitions();

/// The paper's reported Table 3 numbers for side-by-side printing.
/// Times in seconds; wedges in billions; rho in rounds. Negative values
/// mean "not reported" (out-of-memory / did-not-finish entries).
struct PaperTable3Row {
  const char* label;
  double t_pvbcnt;
  double t_bup;
  double t_parb;
  double t_receipt;
  double wedges_bup_billion;      // ParB traverses the same wedges as BUP
  double wedges_receipt_billion;
  double rho_parb;
  double rho_receipt;
};

/// Lookup by target label ("ItU" …). Returns nullptr for unknown labels.
const PaperTable3Row* FindPaperRow(const std::string& label);

/// The paper's Table 2 statistics (for the shape comparison in Table 2's
/// reproduction): butterflies and wedges in billions, max tip numbers.
struct PaperTable2Row {
  const char* dataset;  // "it" ...
  double butterflies_billion;
  double wedges_billion;
  double theta_max_u;
  double theta_max_v;
};
const PaperTable2Row* FindPaperTable2Row(const std::string& dataset);

/// The ablation configurations of Figs. 6-7: RECEIPT (all optimizations),
/// RECEIPT- (no DGM) and RECEIPT-- (no DGM, no HUC).
enum class AblationConfig { kFull, kNoDgm, kNeither };

/// Runs ReceiptDecompose on a target under one ablation configuration with
/// the default thread/partition settings and returns its stats.
PeelStats RunReceiptAblation(const Target& target, AblationConfig config);

/// Prints a horizontal rule of width 100.
void PrintRule(char fill = '-');

/// Prints the standard bench header naming the table/figure reproduced.
void PrintHeader(const std::string& title);

// ---------------------------------------------------------------------------
// Machine-readable output: every bench can take `--json <path>` and emit its
// per-phase timings/counters as a BENCH_*.json trajectory file.
// ---------------------------------------------------------------------------

/// Strips a `--json <path>` argument pair out of (argc, argv) — call before
/// handing argv to google-benchmark, which rejects unknown flags. Returns
/// the path, or "" when the flag is absent.
std::string ConsumeJsonFlag(int* argc, char** argv);

/// One measurement row of a bench's JSON output: a name plus integer
/// counters and floating-point values (kept separate so counters round-trip
/// exactly).
struct JsonRecord {
  std::string name;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> values;
};

/// Appends the per-phase timings and counters of `stats` to `record` —
/// wedges by phase, sync rounds, frontier-vs-scan direction counters and
/// the per-phase seconds.
void AppendPeelStats(const PeelStats& stats, JsonRecord* record);

/// Writes `{"bench": <bench>, "records": [...]}` to `path`. Returns false
/// (with a message on stderr) when the file cannot be written.
bool WriteBenchJson(const std::string& path, const std::string& bench,
                    const std::vector<JsonRecord>& records);

}  // namespace receipt::bench

#endif  // RECEIPT_BENCH_BENCH_COMMON_H_
