// Reproduces Table 3: execution time (t), wedges traversed (∧) and
// synchronization rounds (ρ) of BUP, ParB and RECEIPT — plus the pvBcnt
// row — on every dataset × side, with the paper's reported values printed
// alongside for shape comparison.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace receipt::bench {
namespace {

struct Row {
  double t_pvbcnt = 0;
  double t_bup = 0;
  double t_parb = 0;
  double t_receipt = 0;
  uint64_t wedges_pvbcnt = 0;
  uint64_t wedges_bup = 0;
  uint64_t wedges_receipt = 0;
  uint64_t rho_parb = 0;
  uint64_t rho_receipt = 0;
};

std::map<std::string, Row>& Rows() {
  static auto& rows = *new std::map<std::string, Row>();
  return rows;
}

TipOptions MakeOptions(Side side, int threads) {
  TipOptions options;
  options.side = side;
  options.num_threads = threads;
  options.num_partitions = DefaultPartitions();
  return options;
}

void RunTarget(benchmark::State& state, const Target& target) {
  const BipartiteGraph& g = Dataset(target.dataset);
  Row& row = Rows()[target.label];
  const int threads = DefaultThreads();
  for (auto _ : state) {
    {
      WallTimer t;
      uint64_t wedges = 0;
      benchmark::DoNotOptimize(CountButterflies(g, threads, &wedges));
      row.t_pvbcnt = t.Seconds();
      row.wedges_pvbcnt = wedges;
    }
    {
      const TipResult r = BupDecompose(g, MakeOptions(target.side, 1));
      row.t_bup = r.stats.seconds_total;
      row.wedges_bup = r.stats.TotalWedges();
    }
    {
      const TipResult r = ParbDecompose(g, MakeOptions(target.side, threads));
      row.t_parb = r.stats.seconds_total;
      row.rho_parb = r.stats.sync_rounds;
    }
    {
      const TipResult r =
          ReceiptDecompose(g, MakeOptions(target.side, threads));
      row.t_receipt = r.stats.seconds_total;
      row.wedges_receipt = r.stats.TotalWedges();
      row.rho_receipt = r.stats.sync_rounds;
    }
  }
  state.counters["t_bup_s"] = row.t_bup;
  state.counters["t_parb_s"] = row.t_parb;
  state.counters["t_receipt_s"] = row.t_receipt;
  state.counters["rho_parb"] = static_cast<double>(row.rho_parb);
  state.counters["rho_receipt"] = static_cast<double>(row.rho_receipt);
}

void PrintTable() {
  PrintHeader(
      "Table 3 reproduction — t / wedges / rho for BUP, ParB, RECEIPT "
      "(threads=" + std::to_string(DefaultThreads()) +
      ", P=" + std::to_string(DefaultPartitions()) + ")");
  std::printf(
      "%-5s | %8s %8s %8s %8s | %12s %12s %12s | %9s %9s | paper "
      "t(BUP/ParB/REC)  rho(ParB/REC)\n",
      "tgt", "t_cnt", "t_BUP", "t_ParB", "t_REC", "wdg_cnt", "wdg_BUP",
      "wdg_REC", "rho_ParB", "rho_REC");
  PrintRule();
  for (const Target& target : AllTargets()) {
    const Row& r = Rows()[target.label];
    const PaperTable3Row* paper = FindPaperRow(target.label);
    std::printf(
        "%-5s | %8.3f %8.3f %8.3f %8.3f | %12llu %12llu %12llu | %9llu "
        "%9llu | %8.0f/%8.0f/%6.1f  %7.0f/%5.0f\n",
        target.label.c_str(), r.t_pvbcnt, r.t_bup, r.t_parb, r.t_receipt,
        static_cast<unsigned long long>(r.wedges_pvbcnt),
        static_cast<unsigned long long>(r.wedges_bup),
        static_cast<unsigned long long>(r.wedges_receipt),
        static_cast<unsigned long long>(r.rho_parb),
        static_cast<unsigned long long>(r.rho_receipt), paper->t_bup,
        paper->t_parb, paper->t_receipt, paper->rho_parb,
        paper->rho_receipt);
  }
  PrintRule();
  // Shape summary: who wins and by how much.
  double max_rho_ratio = 0;
  double max_wedge_ratio = 0;
  for (const Target& target : AllTargets()) {
    const Row& r = Rows()[target.label];
    if (r.rho_receipt > 0) {
      max_rho_ratio =
          std::max(max_rho_ratio, static_cast<double>(r.rho_parb) /
                                      static_cast<double>(r.rho_receipt));
    }
    if (r.wedges_receipt > 0) {
      max_wedge_ratio =
          std::max(max_wedge_ratio,
                   static_cast<double>(r.wedges_bup) /
                       static_cast<double>(r.wedges_receipt));
    }
  }
  std::printf(
      "max rho reduction ParB/RECEIPT: %.0fx (paper: up to 1105x); max "
      "wedge reduction BUP/RECEIPT: %.1fx (paper: up to 64x)\n\n",
      max_rho_ratio, max_wedge_ratio);
}

std::vector<JsonRecord> CollectRecords() {
  std::vector<JsonRecord> records;
  for (const auto& [label, r] : Rows()) {
    JsonRecord record;
    record.name = label;
    record.counters.emplace_back("wedges_pvbcnt", r.wedges_pvbcnt);
    record.counters.emplace_back("wedges_bup", r.wedges_bup);
    record.counters.emplace_back("wedges_receipt", r.wedges_receipt);
    record.counters.emplace_back("rho_parb", r.rho_parb);
    record.counters.emplace_back("rho_receipt", r.rho_receipt);
    record.values.emplace_back("t_pvbcnt", r.t_pvbcnt);
    record.values.emplace_back("t_bup", r.t_bup);
    record.values.emplace_back("t_parb", r.t_parb);
    record.values.emplace_back("t_receipt", r.t_receipt);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) {
  const std::string json_path = receipt::bench::ConsumeJsonFlag(&argc, argv);
  for (const receipt::bench::Target& target : receipt::bench::AllTargets()) {
    benchmark::RegisterBenchmark(
        ("Table3/" + target.label).c_str(),
        [target](benchmark::State& state) {
          receipt::bench::RunTarget(state, target);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintTable();
  if (!json_path.empty() &&
      !receipt::bench::WriteBenchJson(json_path, "table3_comparison",
                                      receipt::bench::CollectRecords())) {
    return 1;
  }
  return 0;
}
