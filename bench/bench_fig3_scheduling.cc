// Ablation for Fig. 3 (§3.2.1): Workload-aware Scheduling (WaS) of the
// RECEIPT FD task queue. Part 1 re-enacts the figure's 2-thread schedule on
// synthetic task costs; part 2 measures FD time with and without WaS on the
// real datasets.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "bench_common.h"
#include "tip/receipt_cd.h"
#include "tip/receipt_fd.h"

namespace receipt::bench {
namespace {

/// Simulated makespan of dynamic task allocation for given task costs:
/// each idle worker takes the next task in queue order (the list-scheduling
/// model of Fig. 3).
uint64_t SimulateMakespan(std::vector<uint64_t> costs, int workers,
                          bool workload_aware) {
  if (workload_aware) {
    std::sort(costs.begin(), costs.end(), std::greater<>());
  }
  std::vector<uint64_t> finish(static_cast<size_t>(workers), 0);
  for (const uint64_t c : costs) {
    auto& earliest = *std::min_element(finish.begin(), finish.end());
    earliest += c;
  }
  return *std::max_element(finish.begin(), finish.end());
}

void FigureThreeExample(benchmark::State& state) {
  // The exact task costs of Fig. 3: t = {13, 4, 10, 20, 1, 2}, 2 threads.
  const std::vector<uint64_t> costs = {13, 4, 10, 20, 1, 2};
  uint64_t naive = 0;
  uint64_t was = 0;
  for (auto _ : state) {
    naive = SimulateMakespan(costs, 2, false);
    was = SimulateMakespan(costs, 2, true);
  }
  state.counters["makespan_naive"] = static_cast<double>(naive);
  state.counters["makespan_was"] = static_cast<double>(was);
  std::printf(
      "Fig. 3 exact example: naive order finishes at t=%llu (paper: 33), "
      "WaS at t=%llu (paper: 25)\n",
      static_cast<unsigned long long>(naive),
      static_cast<unsigned long long>(was));
}

struct Row {
  double fd_was = 0;
  double fd_naive = 0;
  uint64_t makespan_was = 0;
  uint64_t makespan_naive = 0;
};

std::map<std::string, Row>& Rows() {
  static auto& rows = *new std::map<std::string, Row>();
  return rows;
}

void DatasetScheduling(benchmark::State& state, const Target& target) {
  const BipartiteGraph swapped = target.side == Side::kV
                                     ? Dataset(target.dataset).SwappedCopy()
                                     : BipartiteGraph();
  const BipartiteGraph& g =
      target.side == Side::kV ? swapped : Dataset(target.dataset);
  TipOptions options;
  options.num_threads = DefaultThreads();
  options.num_partitions = DefaultPartitions();
  Row row;
  for (auto _ : state) {
    PeelStats cd_stats;
    const CdResult cd = ReceiptCd(g, options, &cd_stats);
    // Wall-clock FD with and without WaS.
    std::vector<Count> tips(g.num_u());
    PeelStats fd_stats_was;
    options.workload_aware_scheduling = true;
    ReceiptFd(g, cd, options, tips, &fd_stats_was);
    row.fd_was = fd_stats_was.seconds_fd;
    PeelStats fd_stats_naive;
    options.workload_aware_scheduling = false;
    ReceiptFd(g, cd, options, tips, &fd_stats_naive);
    row.fd_naive = fd_stats_naive.seconds_fd;
    // Deterministic makespan model on the real subset workloads (immune to
    // the single-core timing noise).
    const std::vector<Count> wedges = ComputeSubsetWedgeCounts(
        g, cd.subset_of, static_cast<uint32_t>(cd.subsets.size()),
        options.num_threads);
    std::vector<uint64_t> costs(wedges.begin(), wedges.end());
    row.makespan_naive = SimulateMakespan(costs, 4, false);
    row.makespan_was = SimulateMakespan(costs, 4, true);
  }
  state.counters["fd_was_s"] = row.fd_was;
  state.counters["fd_naive_s"] = row.fd_naive;
  Rows()[target.label] = row;
}

void PrintTable() {
  PrintHeader(
      "Fig. 3 ablation — workload-aware scheduling of RECEIPT FD tasks");
  std::printf("%-5s | %10s %10s | %14s %14s %9s\n", "tgt", "FD+WaS(s)",
              "FD naive(s)", "model_WaS", "model_naive", "model_gain");
  PrintRule();
  for (const auto& [label, r] : Rows()) {
    std::printf("%-5s | %10.3f %10.3f | %14llu %14llu %8.2f%%\n",
                label.c_str(), r.fd_was, r.fd_naive,
                static_cast<unsigned long long>(r.makespan_was),
                static_cast<unsigned long long>(r.makespan_naive),
                r.makespan_naive > 0
                    ? 100.0 * (1.0 - static_cast<double>(r.makespan_was) /
                                         static_cast<double>(r.makespan_naive))
                    : 0.0);
  }
  PrintRule();
  std::printf(
      "model = 4-worker list-scheduling makespan over the measured induced "
      "subset wedge counts (LPT is a 4/3-approximation).\n\n");
}

std::vector<JsonRecord> CollectRecords() {
  std::vector<JsonRecord> records;
  for (const auto& [label, r] : Rows()) {
    JsonRecord record;
    record.name = label;
    record.counters.emplace_back("makespan_was", r.makespan_was);
    record.counters.emplace_back("makespan_naive", r.makespan_naive);
    record.values.emplace_back("fd_was_s", r.fd_was);
    record.values.emplace_back("fd_naive_s", r.fd_naive);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) {
  const std::string json_path = receipt::bench::ConsumeJsonFlag(&argc, argv);
  benchmark::RegisterBenchmark("Fig3/PaperExample",
                               receipt::bench::FigureThreeExample)
      ->Iterations(1);
  for (const receipt::bench::Target& target : receipt::bench::AllTargets()) {
    if (target.side != receipt::Side::kU) continue;
    benchmark::RegisterBenchmark(
        ("Fig3/" + target.label).c_str(),
        [target](benchmark::State& state) {
          receipt::bench::DatasetScheduling(state, target);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintTable();
  if (!json_path.empty() &&
      !receipt::bench::WriteBenchJson(json_path, "fig3_scheduling",
                                      receipt::bench::CollectRecords())) {
    return 1;
  }
  return 0;
}
