// Reproduces Fig. 5: RECEIPT execution time as a function of the number of
// vertex subsets P, on the U sides that the paper shows (execution slows
// for very small P — big induced subgraphs, FD bottleneck — and for very
// large P — more CD synchronization).

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench_common.h"

namespace receipt::bench {
namespace {

// The paper sweeps 50…550 with P=150 chosen; our analogues are ~1000x
// smaller so the sweep is scaled to keep subsets non-degenerate.
const std::vector<int>& PartitionSweep() {
  static const auto& sweep = *new std::vector<int>{5, 10, 20, 30, 60, 120};
  return sweep;
}

struct Point {
  double seconds_total = 0;
  double seconds_cd = 0;
  double seconds_fd = 0;
  uint64_t sync_rounds = 0;
};

std::map<std::string, std::map<int, Point>>& Series() {
  static auto& series = *new std::map<std::string, std::map<int, Point>>();
  return series;
}

void SweepPoint(benchmark::State& state, const Target& target,
                int partitions) {
  const BipartiteGraph& g = Dataset(target.dataset);
  TipOptions options;
  options.side = target.side;
  options.num_threads = DefaultThreads();
  options.num_partitions = partitions;
  Point point;
  for (auto _ : state) {
    const TipResult r = ReceiptDecompose(g, options);
    point.seconds_total = r.stats.seconds_total;
    point.seconds_cd = r.stats.seconds_cd;
    point.seconds_fd = r.stats.seconds_fd;
    point.sync_rounds = r.stats.sync_rounds;
  }
  state.counters["seconds"] = point.seconds_total;
  state.counters["sync_rounds"] = static_cast<double>(point.sync_rounds);
  Series()[target.label][partitions] = point;
}

void PrintTable() {
  PrintHeader("Fig. 5 reproduction — RECEIPT execution time vs P");
  std::printf("%-5s", "P");
  for (const auto& [label, points] : Series()) std::printf(" | %-22s", label.c_str());
  std::printf("\n%-5s", "");
  for (size_t i = 0; i < Series().size(); ++i) {
    std::printf(" | %7s %6s %7s", "total_s", "cd_s", "rounds");
  }
  std::printf("\n");
  PrintRule();
  for (const int p : PartitionSweep()) {
    std::printf("%-5d", p);
    for (const auto& [label, points] : Series()) {
      const Point& pt = points.at(p);
      std::printf(" | %7.3f %6.3f %7llu", pt.seconds_total, pt.seconds_cd,
                  static_cast<unsigned long long>(pt.sync_rounds));
    }
    std::printf("\n");
  }
  PrintRule();
  std::printf(
      "expected shape (paper Fig. 5): sync rounds (and CD time share) grow "
      "with P; small P inflates FD subgraphs.\n\n");
}

std::vector<JsonRecord> CollectRecords() {
  std::vector<JsonRecord> records;
  for (const auto& [label, points] : Series()) {
    for (const auto& [partitions, pt] : points) {
      JsonRecord record;
      record.name = label + "/P" + std::to_string(partitions);
      record.counters.emplace_back("partitions",
                                   static_cast<uint64_t>(partitions));
      record.counters.emplace_back("sync_rounds", pt.sync_rounds);
      record.values.emplace_back("seconds_total", pt.seconds_total);
      record.values.emplace_back("seconds_cd", pt.seconds_cd);
      record.values.emplace_back("seconds_fd", pt.seconds_fd);
      records.push_back(std::move(record));
    }
  }
  return records;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) {
  const std::string json_path = receipt::bench::ConsumeJsonFlag(&argc, argv);
  // The paper's Fig. 5 shows the large U-side datasets.
  for (const receipt::bench::Target& target : receipt::bench::AllTargets()) {
    if (target.side != receipt::Side::kU) continue;
    for (const int partitions : receipt::bench::PartitionSweep()) {
      benchmark::RegisterBenchmark(
          ("Fig5/" + target.label + "/P" + std::to_string(partitions))
              .c_str(),
          [target, partitions](benchmark::State& state) {
            receipt::bench::SweepPoint(state, target, partitions);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintTable();
  if (!json_path.empty() &&
      !receipt::bench::WriteBenchJson(json_path, "fig5_partitions",
                                      receipt::bench::CollectRecords())) {
    return 1;
  }
  return 0;
}
