// Reproduces Fig. 7: execution time of RECEIPT, RECEIPT- (no DGM) and
// RECEIPT-- (no DGM, no HUC), normalized to RECEIPT--. Time closely tracks
// the wedge-workload trend of Fig. 6.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace receipt::bench {
namespace {

struct Row {
  double full = 0;
  double no_dgm = 0;
  double neither = 0;
};

std::map<std::string, Row>& Rows() {
  static auto& rows = *new std::map<std::string, Row>();
  return rows;
}

void Ablation(benchmark::State& state, const Target& target) {
  Row row;
  for (auto _ : state) {
    row.full = RunReceiptAblation(target, AblationConfig::kFull).seconds_total;
    row.no_dgm =
        RunReceiptAblation(target, AblationConfig::kNoDgm).seconds_total;
    row.neither =
        RunReceiptAblation(target, AblationConfig::kNeither).seconds_total;
  }
  state.counters["t_receipt_s"] = row.full;
  state.counters["t_receipt_minus_s"] = row.no_dgm;
  state.counters["t_receipt_mm_s"] = row.neither;
  Rows()[target.label] = row;
}

void PrintTable() {
  PrintHeader(
      "Fig. 7 reproduction — normalized execution time: RECEIPT / "
      "RECEIPT- / RECEIPT--");
  std::printf("%-5s | %10s %10s %10s | %8s %8s %8s\n", "tgt", "RECEIPT(s)",
              "RECEIPT-", "RECEIPT--", "norm", "norm-", "norm--");
  PrintRule();
  for (const Target& target : AllTargets()) {
    const Row& r = Rows()[target.label];
    const double base = r.neither > 0 ? r.neither : 1.0;
    std::printf("%-5s | %10.3f %10.3f %10.3f | %8.3f %8.3f %8.3f\n",
                target.label.c_str(), r.full, r.no_dgm, r.neither,
                r.full / base, r.no_dgm / base, 1.0);
  }
  PrintRule();
  std::printf(
      "expected shape (paper Fig. 7): time follows the Fig. 6 wedge trend; "
      "TrU-style datasets gain the most from HUC.\n\n");
}

std::vector<JsonRecord> CollectRecords() {
  std::vector<JsonRecord> records;
  for (const auto& [label, r] : Rows()) {
    JsonRecord record;
    record.name = label;
    record.values.emplace_back("seconds_receipt", r.full);
    record.values.emplace_back("seconds_receipt_minus", r.no_dgm);
    record.values.emplace_back("seconds_receipt_minus_minus", r.neither);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) {
  const std::string json_path = receipt::bench::ConsumeJsonFlag(&argc, argv);
  for (const receipt::bench::Target& target : receipt::bench::AllTargets()) {
    benchmark::RegisterBenchmark(
        ("Fig7/" + target.label).c_str(),
        [target](benchmark::State& state) {
          receipt::bench::Ablation(state, target);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintTable();
  if (!json_path.empty() &&
      !receipt::bench::WriteBenchJson(json_path, "fig7_optimizations_time",
                                      receipt::bench::CollectRecords())) {
    return 1;
  }
  return 0;
}
