// Extension bench (§7): wing decomposition (edge peeling) — per-edge
// counting throughput and full decomposition on reduced-size analogues,
// reporting wedge traversal and maximum wing numbers.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace receipt::bench {
namespace {

/// Wing decomposition has a higher complexity class than tip decomposition
/// (per-edge peeling explores both endpoints' neighborhoods), so this bench
/// runs on smaller graphs derived from the analogue generators.
BipartiteGraph WingDataset(const std::string& name) {
  const BipartiteGraph& g = Dataset(name);
  // Deterministically subsample ~20% of edges.
  std::vector<BipartiteGraph::Edge> edges;
  const auto all = g.ToEdges();
  for (size_t i = 0; i < all.size(); i += 5) edges.push_back(all[i]);
  return BipartiteGraph::FromEdges(g.num_u(), g.num_v(), std::move(edges));
}

struct Row {
  double t_count = 0;
  double t_decompose = 0;
  double t_receipt_w = 0;
  uint64_t wedges = 0;
  uint64_t receipt_w_rounds = 0;
  Count max_wing = 0;
  uint64_t edges = 0;
};

std::map<std::string, Row>& Rows() {
  static auto& rows = *new std::map<std::string, Row>();
  return rows;
}

void Wing(benchmark::State& state, const std::string& name) {
  const BipartiteGraph g = WingDataset(name);
  Row row;
  row.edges = g.num_edges();
  for (auto _ : state) {
    {
      WallTimer t;
      uint64_t wedges = 0;
      benchmark::DoNotOptimize(
          PerEdgeButterflyCount(g, DefaultThreads(), &wedges));
      row.t_count = t.Seconds();
    }
    const WingResult r = WingDecompose(g, DefaultThreads());
    row.t_decompose = r.stats.seconds_total;
    row.wedges = r.stats.TotalWedges();
    row.max_wing = r.MaxWingNumber();
    ReceiptWingOptions parallel_options;
    parallel_options.num_threads = DefaultThreads();
    parallel_options.num_partitions = 8;
    const WingResult rw = ReceiptWingDecompose(g, parallel_options);
    row.t_receipt_w = rw.stats.seconds_total;
    row.receipt_w_rounds = rw.stats.sync_rounds;
  }
  state.counters["t_count_s"] = row.t_count;
  state.counters["t_decompose_s"] = row.t_decompose;
  state.counters["max_wing"] = static_cast<double>(row.max_wing);
  Rows()[name] = row;
}

void PrintTable() {
  PrintHeader(
      "Wing decomposition extension (section 7) — edge peeling on reduced "
      "analogues");
  std::printf("%-4s | %9s | %10s %12s %14s %10s | %12s %12s\n", "ds", "|E|",
              "t_count(s)", "t_seq(s)", "t_RECEIPT-W(s)", "rounds_W",
              "wedges", "max_wing");
  PrintRule();
  for (const std::string& name : PaperAnalogueNames()) {
    const Row& r = Rows()[name];
    std::printf(
        "%-4s | %9llu | %10.3f %12.3f %14.3f %10llu | %12llu %12llu\n",
        name.c_str(), static_cast<unsigned long long>(r.edges), r.t_count,
        r.t_decompose, r.t_receipt_w,
        static_cast<unsigned long long>(r.receipt_w_rounds),
        static_cast<unsigned long long>(r.wedges),
        static_cast<unsigned long long>(r.max_wing));
  }
  PrintRule();
  std::printf(
      "wing numbers have a much smaller range than tip numbers (§7), which "
      "is why the paper expects RECEIPT-style workload reduction to pay off "
      "even more for edge peeling.\n\n");
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) {
  for (const std::string& name : receipt::PaperAnalogueNames()) {
    benchmark::RegisterBenchmark(
        ("Wing/" + name).c_str(),
        [name](benchmark::State& state) {
          receipt::bench::Wing(state, name);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintTable();
  return 0;
}
