// Incremental-serving micro-benchmark: a live seal that folds a small edge
// batch through the sealed baseline (range replay + selective fine phase)
// against a from-scratch decomposition of the same final graph, on a skewed
// (Chung–Lu) generator shape, for tip-U and wing across thread counts.
//
// Verifies, and exits non-zero unless, per configuration:
//  * the sealed numbers are bit-identical to the from-scratch seal of the
//    final graph AND to the public ReceiptDecompose / ReceiptWingDecompose
//    driver (HUC on — a different machinery path — for tips), and
//  * the incremental seal ran incrementally (no full fallback) and examined
//    strictly fewer elements than the from-scratch seal — wedge totals plus
//    scan/frontier/index active-set builds plus SupportIndex walk, patch and
//    rebuild work plus the replay's own element touches; the replay cost is
//    charged so the comparison stays honest.
//
// `--json <path>` additionally emits the records as a
// BENCH_incremental_micro trajectory file. Plain executable: the gate needs
// deterministic single-pass element counters, not timing.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/observability.h"
#include "service/graph_registry.h"
#include "service/live_graph.h"
#include "service/result_cache.h"
#include "tip/receipt.h"
#include "wing/receipt_wing.h"

namespace receipt::bench {
namespace {

using service::Algorithm;
using service::ApplyResult;
using service::CacheKey;
using service::EdgeUpdate;
using service::GraphHandle;
using service::GraphRegistry;
using service::LiveConfig;
using service::LiveGraphManager;
using service::LiveOptions;
using service::Payload;
using service::RequestKind;
using service::ResultCache;
using service::Status;

Algorithm AlgorithmFor(RequestKind kind) {
  return kind == RequestKind::kWing ? Algorithm::kReceiptWing
                                    : Algorithm::kReceipt;
}

/// Everything a seal run examines: wedges traversed in every phase, the
/// entities touched building active sets in either direction, the
/// SupportIndex's walk/refine/patch/rebuild work, and the incremental
/// replay's member + patch-log touches.
uint64_t Examined(const PeelStats& s) {
  return s.TotalWedges() + s.scan_build_elements +
         s.frontier_build_elements + s.index_active_elements +
         s.bound_walk_buckets + s.histogram_refines + s.init_patch_elements +
         s.index_rebuild_elements + s.incremental_replay_elements;
}

/// Deterministic small churn in the graph's low-degree tail: `pairs`
/// deletions of evenly spaced edges whose endpoints both have small degree,
/// and `pairs` insertions between high-id (ChungLu ids are degree-ordered,
/// so low-weight) vertices. Hub churn would dirty most of the structure;
/// tail churn is the localized-update serving scenario the incremental
/// path exists for, and what the element gate measures.
std::vector<EdgeUpdate> SmallChurn(const BipartiteGraph& graph,
                                   size_t pairs) {
  const std::vector<BipartiteGraph::Edge> edges = graph.ToEdges();
  std::vector<uint32_t> du(graph.num_u(), 0);
  std::vector<uint32_t> dv(graph.num_v(), 0);
  for (const BipartiteGraph::Edge& e : edges) {
    ++du[e.u];
    ++dv[e.v];
  }
  std::vector<size_t> tail;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (du[edges[i].u] <= 3 && dv[edges[i].v] <= 3) tail.push_back(i);
  }
  std::vector<EdgeUpdate> updates;
  const size_t stride = tail.size() / (pairs + 1);
  for (size_t i = 1; i <= pairs && stride > 0; ++i) {
    const BipartiteGraph::Edge& e = edges[tail[i * stride]];
    updates.push_back({/*insert=*/false, e.u, e.v});
  }
  size_t inserted = 0;
  for (VertexId u = graph.num_u(); u-- > 0 && inserted < pairs;) {
    for (VertexId v = graph.num_v(); v-- > 0 && inserted < pairs;) {
      if (dv[v] > 3) continue;
      bool present = false;
      for (const VertexId w : graph.Neighbors(u)) {
        if (w - graph.num_u() == v) {
          present = true;
          break;
        }
      }
      if (!present) {
        updates.push_back({/*insert=*/true, u, v});
        ++inserted;
        break;  // at most one insert per U vertex keeps the batch spread
      }
    }
  }
  return updates;
}

/// From-scratch numbers through the public drivers (different machinery:
/// HUC stays on for tips) — the cross-check that the seal didn't just agree
/// with itself.
std::vector<Count> DirectNumbers(const BipartiteGraph& graph,
                                 const LiveConfig& config, int threads) {
  if (config.kind == RequestKind::kWing) {
    ReceiptWingOptions options;
    options.num_threads = threads;
    options.num_partitions = static_cast<int>(config.partitions);
    return ReceiptWingDecompose(graph, options).wing_numbers;
  }
  TipOptions options;
  options.side = Side::kU;
  options.num_threads = threads;
  options.num_partitions = static_cast<int>(config.partitions);
  return ReceiptDecompose(graph, options).tip_numbers;
}

void Report(const char* kind, const char* path, int threads,
            const PeelStats& s, std::vector<JsonRecord>& records) {
  std::printf(
      "%-6s %-12s t=%-2d examined=%-10llu wedges=%-10llu replay=%-8llu "
      "reused=%-3llu repeeled=%-3llu seal=%.3fs\n",
      kind, path, threads, static_cast<unsigned long long>(Examined(s)),
      static_cast<unsigned long long>(s.TotalWedges()),
      static_cast<unsigned long long>(s.incremental_replay_elements),
      static_cast<unsigned long long>(s.incremental_ranges_reused),
      static_cast<unsigned long long>(s.incremental_ranges_repeeled),
      s.seconds_total);
  JsonRecord record;
  record.name = std::string(kind) + "/" + path + "/t" +
                std::to_string(threads);
  record.counters.emplace_back("examined", Examined(s));
  record.counters.emplace_back("replay_elements",
                               s.incremental_replay_elements);
  record.counters.emplace_back("ranges_reused", s.incremental_ranges_reused);
  record.counters.emplace_back("ranges_repeeled",
                               s.incremental_ranges_repeeled);
  AppendPeelStats(s, &record);
  records.push_back(std::move(record));
}

/// Seals `updates` on a live manager seeded with `base` under `config`, then
/// seals the resulting final graph from scratch on a second manager (same
/// machinery, no baseline) and re-derives it through the public drivers.
/// Returns false on a bit-identicality or element-gate violation.
bool CompareOne(const char* kind_name, const LiveConfig& config,
                const BipartiteGraph& base, size_t churn_pairs, int threads,
                std::vector<JsonRecord>& records) {
  LiveOptions live_options;
  live_options.max_pending_edges = size_t{1} << 30;  // seal only when forced
  live_options.dirty_fraction_limit = 1.0;  // measure reuse, not fallback
  live_options.seal_threads = threads;

  GraphRegistry registry;
  ResultCache cache(size_t{64} << 20);
  obs::Observability obs;
  LiveGraphManager live(registry, cache, live_options, obs);
  registry.Register("g", BipartiteGraph(base));
  std::string error;
  if (live.Track("g", config, threads, &error) != Status::kOk) {
    std::printf("!! %s t=%d: Track failed: %s\n", kind_name, threads,
                error.c_str());
    return false;
  }

  const std::vector<EdgeUpdate> updates = SmallChurn(base, churn_pairs);
  const ApplyResult result =
      live.ApplyEdges("g", updates, /*force_seal=*/true, threads);
  if (result.status != Status::kOk || !result.sealed ||
      result.reports.size() != 1) {
    std::printf("!! %s t=%d: seal failed: %s\n", kind_name, threads,
                result.error.c_str());
    return false;
  }
  const auto sealed = cache.Get(CacheKey{"g", result.epoch, config.kind,
                                         AlgorithmFor(config.kind),
                                         config.partitions});
  if (sealed == nullptr) {
    std::printf("!! %s t=%d: seal did not prime the cache\n", kind_name,
                threads);
    return false;
  }
  const GraphHandle final_handle = registry.Acquire("g");
  const BipartiteGraph& final_graph = final_handle.graph();

  // From-scratch seal of the final graph: identical machinery (same seal
  // options, same pool discipline), no baseline to lean on.
  GraphRegistry full_registry;
  ResultCache full_cache(size_t{64} << 20);
  obs::Observability full_obs;
  LiveGraphManager full(full_registry, full_cache, live_options, full_obs);
  full_registry.Register("f", BipartiteGraph(final_graph));
  if (full.Track("f", config, threads, &error) != Status::kOk) {
    std::printf("!! %s t=%d: full Track failed: %s\n", kind_name, threads,
                error.c_str());
    return false;
  }
  const auto scratch = full_cache.Get(
      CacheKey{"f", full_registry.Acquire("f").epoch(), config.kind,
               AlgorithmFor(config.kind), config.partitions});
  if (scratch == nullptr) {
    std::printf("!! %s t=%d: full seal did not prime the cache\n", kind_name,
                threads);
    return false;
  }

  Report(kind_name, "incremental", threads, sealed->stats, records);
  Report(kind_name, "scratch", threads, scratch->stats, records);

  bool ok = true;
  if (!result.reports[0].incremental) {
    std::printf("!! %s t=%d: seal fell back to a full recompute\n",
                kind_name, threads);
    ok = false;
  }
  if (result.reports[0].ranges_reused == 0) {
    std::printf("!! %s t=%d: seal reused no sealed ranges\n", kind_name,
                threads);
    ok = false;
  }
  if (sealed->numbers != scratch->numbers) {
    std::printf("!! %s t=%d: sealed numbers differ from the from-scratch "
                "seal of the final graph\n",
                kind_name, threads);
    ok = false;
  }
  if (sealed->numbers != DirectNumbers(final_graph, config, threads)) {
    std::printf("!! %s t=%d: sealed numbers differ from the public "
                "decomposition driver\n",
                kind_name, threads);
    ok = false;
  }
  if (Examined(sealed->stats) >= Examined(scratch->stats)) {
    std::printf(
        "!! %s t=%d: incremental seal examined %llu elements, expected "
        "strictly fewer than the from-scratch seal's %llu\n",
        kind_name, threads,
        static_cast<unsigned long long>(Examined(sealed->stats)),
        static_cast<unsigned long long>(Examined(scratch->stats)));
    ok = false;
  }
  return ok;
}

int Main(int argc, char** argv) {
  const std::string json_path = ConsumeJsonFlag(&argc, argv);
  PrintHeader(
      "incremental micro-bench — live seal (range replay + selective fine "
      "phase) vs from-scratch, bit-identical by construction");

  // Skewed shapes: heavy tails give long quiet ranges a small batch leaves
  // untouched — the serving scenario the incremental path exists for.
  const BipartiteGraph tip_graph =
      ChungLuBipartite(2500, 1800, 22000, 0.85, 0.85, 2001);
  const BipartiteGraph wing_graph =
      ChungLuBipartite(500, 350, 4000, 0.8, 0.8, 2003);

  const int thread_counts[] = {1, DefaultThreads()};
  std::vector<JsonRecord> records;
  bool ok = true;
  for (const int threads : thread_counts) {
    LiveConfig tip_config;
    tip_config.kind = RequestKind::kTipU;
    tip_config.partitions = 32;
    ok = CompareOne("tip-U", tip_config, tip_graph, /*churn_pairs=*/4,
                    threads, records) &&
         ok;
    LiveConfig wing_config;
    wing_config.kind = RequestKind::kWing;
    wing_config.partitions = 12;
    ok = CompareOne("wing", wing_config, wing_graph, /*churn_pairs=*/4,
                    threads, records) &&
         ok;
  }

  PrintRule();
  std::printf("verdict: %s\n", ok ? "OK" : "FAILED");
  if (!json_path.empty()) {
    if (!WriteBenchJson(json_path, "incremental_micro", records)) ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) { return receipt::bench::Main(argc, argv); }
