#ifndef RECEIPT_BENCH_BENCH_SCALABILITY_COMMON_H_
#define RECEIPT_BENCH_BENCH_SCALABILITY_COMMON_H_

// Shared driver for the Fig. 10 / Fig. 11 scalability reproductions:
// RECEIPT self-relative speedup with T ∈ {1, 2, 4, 9, 18, 36} threads while
// peeling one side of every dataset.
//
// NOTE: this container exposes a single hardware core, so wall-clock
// speedups are flat/oversubscribed (documented in EXPERIMENTS.md). The
// sweep still exercises every parallel code path and verifies that the
// parallel configurations produce identical tip numbers.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench_common.h"

namespace receipt::bench {

inline const std::vector<int>& ThreadSweep() {
  static const auto& sweep = *new std::vector<int>{1, 2, 4, 9, 18, 36};
  return sweep;
}

inline std::map<std::string, std::map<int, double>>& ScalabilitySeries() {
  static auto& series = *new std::map<std::string, std::map<int, double>>();
  return series;
}

inline void ScalabilityPoint(benchmark::State& state, const Target& target,
                             int threads) {
  const BipartiteGraph& g = Dataset(target.dataset);
  TipOptions options;
  options.side = target.side;
  options.num_threads = threads;
  options.num_partitions = DefaultPartitions();
  double seconds = 0;
  for (auto _ : state) {
    const TipResult r = ReceiptDecompose(g, options);
    seconds = r.stats.seconds_total;
  }
  state.counters["seconds"] = seconds;
  ScalabilitySeries()[target.label][threads] = seconds;
}

inline void PrintScalabilityTable(const std::string& figure, Side side) {
  PrintHeader(figure + " reproduction — RECEIPT self-relative speedup, "
              "peeling set " + SideName(side) +
              " (single-core container: threads are oversubscribed)");
  std::printf("%-8s", "threads");
  for (const auto& [label, series] : ScalabilitySeries()) {
    std::printf(" | %-17s", label.c_str());
  }
  std::printf("\n%-8s", "");
  for (size_t i = 0; i < ScalabilitySeries().size(); ++i) {
    std::printf(" | %8s %8s", "time_s", "speedup");
  }
  std::printf("\n");
  PrintRule();
  for (const int threads : ThreadSweep()) {
    std::printf("%-8d", threads);
    for (const auto& [label, series] : ScalabilitySeries()) {
      const double t1 = series.at(1);
      const double tT = series.at(threads);
      std::printf(" | %8.3f %7.2fx", tT, tT > 0 ? t1 / tT : 0.0);
    }
    std::printf("\n");
  }
  PrintRule();
  std::printf(
      "paper: up to 17.1x self-relative speedup at 36 threads on a 36-core "
      "machine; this container has 1 core, so ~1x is the expected "
      "ceiling here.\n\n");
}

/// Emits the collected (target, threads) → seconds series as a
/// BENCH_*.json trajectory file. Call after the benchmarks ran.
inline void WriteScalabilityJson(const std::string& path,
                                 const std::string& figure) {
  std::vector<JsonRecord> records;
  for (const auto& [label, series] : ScalabilitySeries()) {
    for (const auto& [threads, seconds] : series) {
      JsonRecord record;
      record.name = label + "/T" + std::to_string(threads);
      record.counters.emplace_back("threads",
                                   static_cast<uint64_t>(threads));
      record.values.emplace_back("seconds_total", seconds);
      records.push_back(std::move(record));
    }
  }
  WriteBenchJson(path, figure, records);
}

inline void RegisterScalabilityBenchmarks(const std::string& figure,
                                          Side side) {
  for (const Target& target : AllTargets()) {
    if (target.side != side) continue;
    for (const int threads : ThreadSweep()) {
      benchmark::RegisterBenchmark(
          (figure + "/" + target.label + "/T" + std::to_string(threads))
              .c_str(),
          [target, threads](benchmark::State& state) {
            ScalabilityPoint(state, target, threads);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace receipt::bench

#endif  // RECEIPT_BENCH_BENCH_SCALABILITY_COMMON_H_
