// Reproduces Table 2: dataset statistics — sizes, average degrees, total
// butterflies (⊲⊳_G), total wedges (∧_G) and maximum tip numbers for both
// vertex sets, for every paper-analogue dataset.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

namespace receipt::bench {
namespace {

struct Row {
  VertexId num_u = 0;
  VertexId num_v = 0;
  uint64_t num_edges = 0;
  double avg_du = 0;
  double avg_dv = 0;
  Count butterflies = 0;
  Count wedges = 0;
  Count theta_max_u = 0;
  Count theta_max_v = 0;
};

std::map<std::string, Row>& Rows() {
  static auto& rows = *new std::map<std::string, Row>();
  return rows;
}

void DatasetStats(benchmark::State& state, const std::string& name) {
  const BipartiteGraph& g = Dataset(name);
  Row row;
  for (auto _ : state) {
    row.num_u = g.num_u();
    row.num_v = g.num_v();
    row.num_edges = g.num_edges();
    row.avg_du = g.AverageDegree(Side::kU);
    row.avg_dv = g.AverageDegree(Side::kV);
    row.butterflies = TotalButterflies(g, DefaultThreads());
    row.wedges = g.TotalWedges(Side::kU) + g.TotalWedges(Side::kV);
    TipOptions options;
    options.num_threads = DefaultThreads();
    options.num_partitions = DefaultPartitions();
    options.side = Side::kU;
    row.theta_max_u = ReceiptDecompose(g, options).MaxTipNumber();
    options.side = Side::kV;
    row.theta_max_v = ReceiptDecompose(g, options).MaxTipNumber();
  }
  state.counters["butterflies"] = static_cast<double>(row.butterflies);
  state.counters["wedges"] = static_cast<double>(row.wedges);
  state.counters["theta_max_U"] = static_cast<double>(row.theta_max_u);
  state.counters["theta_max_V"] = static_cast<double>(row.theta_max_v);
  Rows()[name] = row;
}

void PrintTable() {
  PrintHeader("Table 2 reproduction — bipartite dataset statistics");
  std::printf(
      "%-4s %9s %9s %10s %7s %7s %14s %14s %14s %16s | paper: ⊲⊳G(B) ∧G(B) "
      "θmaxU θmaxV\n",
      "ds", "|U|", "|V|", "|E|", "dU", "dV", "butterflies", "wedges",
      "theta_max_U", "theta_max_V");
  PrintRule();
  for (const std::string& name : PaperAnalogueNames()) {
    const Row& r = Rows()[name];
    const PaperTable2Row* paper = FindPaperTable2Row(name);
    std::printf(
        "%-4s %9u %9u %10llu %7.1f %7.1f %14llu %14llu %14llu %16llu | "
        "%8.0f %8.0f %.2e %.2e\n",
        name.c_str(), r.num_u, r.num_v,
        static_cast<unsigned long long>(r.num_edges), r.avg_du, r.avg_dv,
        static_cast<unsigned long long>(r.butterflies),
        static_cast<unsigned long long>(r.wedges),
        static_cast<unsigned long long>(r.theta_max_u),
        static_cast<unsigned long long>(r.theta_max_v),
        paper->butterflies_billion, paper->wedges_billion,
        paper->theta_max_u, paper->theta_max_v);
  }
  PrintRule();
  std::printf(
      "shape checks: every dataset butterfly-rich except star-like sides; "
      "θmaxV ≫ θmaxU for hub-dominated V sides (It/De/Lj/En/Tr), matching "
      "the paper.\n\n");
}

std::vector<JsonRecord> CollectRecords() {
  std::vector<JsonRecord> records;
  for (const auto& [name, r] : Rows()) {
    JsonRecord record;
    record.name = name;
    record.counters.emplace_back("num_u", r.num_u);
    record.counters.emplace_back("num_v", r.num_v);
    record.counters.emplace_back("num_edges", r.num_edges);
    record.counters.emplace_back("butterflies", r.butterflies);
    record.counters.emplace_back("wedges", r.wedges);
    record.counters.emplace_back("theta_max_u", r.theta_max_u);
    record.counters.emplace_back("theta_max_v", r.theta_max_v);
    record.values.emplace_back("avg_du", r.avg_du);
    record.values.emplace_back("avg_dv", r.avg_dv);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace
}  // namespace receipt::bench

int main(int argc, char** argv) {
  const std::string json_path = receipt::bench::ConsumeJsonFlag(&argc, argv);
  for (const std::string& name : receipt::PaperAnalogueNames()) {
    benchmark::RegisterBenchmark(
        ("Table2/" + name).c_str(),
        [name](benchmark::State& state) {
          receipt::bench::DatasetStats(state, name);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  receipt::bench::PrintTable();
  if (!json_path.empty() &&
      !receipt::bench::WriteBenchJson(json_path, "table2_datasets",
                                      receipt::bench::CollectRecords())) {
    return 1;
  }
  return 0;
}
